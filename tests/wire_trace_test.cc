// End-to-end wire tracing: framed-extras codec golden bytes, classic/flex
// interop (old peers never see framing, unknown tags are skipped), the
// flight recorder's ring/inflight/JSON semantics, and socket-level tests
// against a live 3-node cluster — a durable SET's server-reported phase
// breakdown, OBSERVE_TRACE returning the matching recorder entry, per-opcode
// wire counters, Prometheus exposition, and seed-determinism of recorder
// dumps.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "client/wire_client.h"
#include "cluster/cluster.h"
#include "common/crc32.h"
#include "json/value.h"
#include "net/tcp_server.h"
#include "net/wire/wire.h"
#include "stats/flight_recorder.h"
#include "stats/registry.h"
#include "stats/trace.h"

namespace couchkv {
namespace {

namespace wire = net::wire;

// --- Codec: framed-extras golden bytes -----------------------------------

TEST(WireTraceCodec, GoldenFlexRequestBytes) {
  wire::Message m = wire::Message::Req(wire::Opcode::kGet);
  m.vbucket = 0x0042;
  m.opaque = 0x01020304;
  m.key = "key";
  wire::TraceFrame tf;
  tf.trace_id = 0x0123456789ABCDEFULL;
  tf.parent_span_id = 0x11223344;
  tf.flags = 0x55667788;
  wire::PutTraceFrame(&m.framing, tf);

  std::string encoded;
  ASSERT_TRUE(wire::Encode(m, &encoded).ok());

  const std::string expected(
      "\x08\x00\x12\x03"                   // flex magic, GET, framing 18, key 3
      "\x00\x00\x00\x42"                   // extras 0, data type 0, vbucket
      "\x00\x00\x00\x15"                   // body = 18 + 3
      "\x01\x02\x03\x04"                   // opaque
      "\x00\x00\x00\x00\x00\x00\x00\x00"   // cas
      "\x01\x10"                           // TLV: trace tag, 16-byte payload
      "\x01\x23\x45\x67\x89\xab\xcd\xef"   // trace id
      "\x11\x22\x33\x44"                   // parent span id
      "\x55\x66\x77\x88"                   // flags
      "key",
      45);
  EXPECT_EQ(encoded, expected);

  wire::FrameDecoder dec(wire::kMagicRequest);
  dec.Feed(encoded);
  wire::Message out;
  Status error = Status::OK();
  ASSERT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.magic, wire::kMagicFlexRequest);
  EXPECT_TRUE(out.is_flex());
  EXPECT_TRUE(out.is_request());
  EXPECT_EQ(out.vbucket, 0x0042);
  EXPECT_EQ(out.key, "key");
  wire::TraceFrame rt;
  ASSERT_TRUE(wire::GetTraceFrame(out.framing, &rt));
  EXPECT_EQ(rt.trace_id, tf.trace_id);
  EXPECT_EQ(rt.parent_span_id, tf.parent_span_id);
  EXPECT_EQ(rt.flags, tf.flags);
}

TEST(WireTraceCodec, DurabilityAndDurationFramesRoundTrip) {
  std::string framing;
  wire::DurabilityFrame df;
  df.replicate_to = 2;
  df.persist_to = 1;
  df.timeout_ms = 1234;
  wire::PutDurabilityFrame(&framing, df);
  wire::ServerDuration sd;
  sd.total_us = 100;
  sd.dispatch_us = 5;
  sd.engine_us = 20;
  sd.replicate_us = 30;
  sd.persist_us = 40;
  wire::PutServerDurationFrame(&framing, sd);

  wire::DurabilityFrame df2;
  ASSERT_TRUE(wire::GetDurabilityFrame(framing, &df2));
  EXPECT_EQ(df2.replicate_to, 2);
  EXPECT_EQ(df2.persist_to, 1);
  EXPECT_EQ(df2.timeout_ms, 1234u);
  wire::ServerDuration sd2;
  ASSERT_TRUE(wire::GetServerDurationFrame(framing, &sd2));
  EXPECT_EQ(sd2.total_us, 100u);
  EXPECT_EQ(sd2.persist_us, 40u);
  // Absent tag: false, output untouched.
  wire::TraceFrame tf;
  EXPECT_FALSE(wire::GetTraceFrame(framing, &tf));
}

TEST(WireTraceCodec, UnknownTagsAreSkipped) {
  // Forward compatibility: a reader scans past tags it does not know.
  std::string framing;
  framing.push_back('\x7f');  // unknown tag
  framing.push_back('\x03');
  framing.append("abc");
  wire::TraceFrame tf;
  tf.trace_id = 99;
  wire::PutTraceFrame(&framing, tf);
  framing.push_back('\x6e');  // another unknown tag after
  framing.push_back('\x00');

  wire::TraceFrame out;
  ASSERT_TRUE(wire::GetTraceFrame(framing, &out));
  EXPECT_EQ(out.trace_id, 99u);
  // Truncated TLV stream: scan fails closed, no crash.
  std::string truncated = "\x7f\x10";  // claims 16 bytes, has none
  EXPECT_FALSE(wire::GetTraceFrame(truncated, &out));
}

TEST(WireTraceCodec, FlexKeyLimitedTo255Bytes) {
  wire::Message m = wire::Message::Req(wire::Opcode::kGet);
  m.key = std::string(250, 'k');  // fine classic, fine flex
  wire::PutTraceFrame(&m.framing, wire::TraceFrame{1, 0, 0});
  std::string encoded;
  EXPECT_TRUE(wire::Encode(m, &encoded).ok());
}

// --- Classic/flex interop ------------------------------------------------

TEST(WireTraceCodec, ClassicFramesUnchangedByFlexSupport) {
  // A message without framing encodes byte-identically to the pre-flex
  // protocol: old clients and servers interoperate with new ones unchanged.
  wire::Message m = wire::Message::Req(wire::Opcode::kNoop);
  m.opaque = 7;
  std::string encoded;
  ASSERT_TRUE(wire::Encode(m, &encoded).ok());
  ASSERT_EQ(encoded.size(), wire::kHeaderSize);
  EXPECT_EQ(static_cast<uint8_t>(encoded[0]), wire::kMagicRequest);
}

// --- Flight recorder -----------------------------------------------------

stats::OpRecord MakeRecord(uint64_t trace_id, uint8_t opcode) {
  stats::OpRecord r;
  r.trace_id = trace_id;
  r.opcode = opcode;
  r.vbucket = 3;
  r.key_hash = 0xabcd;
  r.total_us = 10;
  r.engine_us = 4;
  return r;
}

TEST(FlightRecorder, RingKeepsNewestAndSeqIsMonotonic) {
  stats::FlightRecorder rec(4);
  for (uint64_t i = 1; i <= 6; ++i) rec.Record(MakeRecord(i, 1));
  std::vector<stats::OpRecord> got = rec.Completed();
  ASSERT_EQ(got.size(), 4u);
  // Oldest two (trace 1, 2) fell off; order is oldest-first.
  EXPECT_EQ(got.front().trace_id, 3u);
  EXPECT_EQ(got.back().trace_id, 6u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, got[i - 1].seq + 1);
  }
}

TEST(FlightRecorder, ClearForgetsRecordsButKeepsSeqCounting) {
  stats::FlightRecorder rec(8);
  rec.Record(MakeRecord(1, 1));
  rec.Record(MakeRecord(2, 1));
  rec.Clear();
  EXPECT_TRUE(rec.Completed().empty());
  rec.Record(MakeRecord(3, 1));
  // Seq continues from before the Clear: pre-crash records are visibly
  // absent, not renumbered.
  EXPECT_EQ(rec.Completed().front().seq, 3u);
}

TEST(FlightRecorder, InflightTableTracksAndCaps) {
  stats::FlightRecorder rec;
  std::vector<uint64_t> tokens;
  for (size_t i = 0; i < stats::FlightRecorder::kMaxInflight; ++i) {
    uint64_t t = rec.BeginOp(1, 0, 100 + i, 1000);
    ASSERT_NE(t, 0u);
    tokens.push_back(t);
  }
  // Table full: untracked, not an error.
  EXPECT_EQ(rec.BeginOp(1, 0, 999, 1000), 0u);
  rec.EndOp(tokens[0]);
  EXPECT_EQ(rec.Inflight().size(), stats::FlightRecorder::kMaxInflight - 1);
  EXPECT_NE(rec.BeginOp(1, 0, 999, 1000), 0u);
  rec.EndOp(0);  // no-op
}

TEST(FlightRecorder, ToJsonFiltersByTraceId) {
  stats::FlightRecorder rec;
  rec.Record(MakeRecord(111, 1));
  rec.Record(MakeRecord(222, 2));
  uint64_t tok = rec.BeginOp(3, 9, 222, 5000);
  ASSERT_NE(tok, 0u);
  std::string all = rec.ToJson(6000);
  EXPECT_NE(all.find("\"trace_id\":\"111\""), std::string::npos);
  EXPECT_NE(all.find("\"trace_id\":\"222\""), std::string::npos);
  std::string filtered = rec.ToJson(6000, 0, 222);
  EXPECT_EQ(filtered.find("\"trace_id\":\"111\""), std::string::npos);
  EXPECT_NE(filtered.find("\"trace_id\":\"222\""), std::string::npos);
  // The filtered dump still parses and keeps the matching in-flight op.
  auto doc = json::Parse(filtered);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Field("completed").AsArray().size(), 1u);
  EXPECT_EQ(doc->Field("inflight").AsArray().size(), 1u);
}

// --- Socket-level: live cluster ------------------------------------------

class WireTraceClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) cluster_.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    ASSERT_TRUE(cluster_.StartWireServers("default").ok());
    for (cluster::NodeId id : cluster_.node_ids()) {
      ports_.push_back(cluster_.wire_port(id));
    }
    ASSERT_EQ(ports_.size(), 3u);
  }

  cluster::Cluster cluster_;
  std::vector<uint16_t> ports_;
};

TEST_F(WireTraceClusterTest, ClassicRequestGetsClassicResponse) {
  // Old client against a tracing-enabled server: classic magic in, classic
  // magic out, no framing anywhere.
  wire::Message req = wire::Message::Req(wire::Opcode::kNoop);
  auto resp = client::RawRoundTrip(ports_[0], req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->magic, wire::kMagicResponse);
  EXPECT_FALSE(resp->is_flex());
  EXPECT_TRUE(resp->framing.empty());
}

TEST_F(WireTraceClusterTest, FlexRequestWithUnknownTagIsServed) {
  // A newer client shipping a framing tag this server does not know: the
  // tag is skipped, the op succeeds, and the flex response carries a
  // server-duration entry.
  wire::Message req = wire::Message::Req(wire::Opcode::kNoop);
  req.framing.push_back('\x7f');
  req.framing.push_back('\x02');
  req.framing.append("zz");
  auto resp = client::RawRoundTrip(ports_[0], req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, wire::kSuccess);
  EXPECT_TRUE(resp->is_flex());
  wire::ServerDuration sd;
  EXPECT_TRUE(wire::GetServerDurationFrame(resp->framing, &sd));
}

TEST_F(WireTraceClusterTest, DurableSetReportsPhaseBreakdown) {
  client::WireClient client(ports_, "default");
  client::WriteOptions opts;
  opts.durability.replicate_to = 1;
  opts.durability.persist_to = 1;
  auto r = client.Upsert("durable-key", "v1", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->seqno, 0u);

  const client::ServerTiming& t = r->server;
  EXPECT_NE(t.trace_id, 0u);
  // A durable write crossed a real socket, ran the engine, and waited for
  // replication + persistence: the server must have measured time passing.
  EXPECT_GT(t.total_us, 0u);
  // Phases are disjoint intervals of the same served op, each floored to
  // micros: their sum never exceeds the floored total.
  EXPECT_LE(uint64_t{t.dispatch_us} + t.engine_us + t.replicate_us +
                t.persist_us,
            uint64_t{t.total_us});

  // A plain (non-durable) op reports zero replicate/persist phases.
  auto g = client.Get("durable-key");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_NE(g->server.trace_id, 0u);
  EXPECT_EQ(g->server.replicate_us, 0u);
  EXPECT_EQ(g->server.persist_us, 0u);
}

TEST_F(WireTraceClusterTest, ObserveTraceFindsTheOpByTraceId) {
  client::WireClient client(ports_, "default");
  client::WriteOptions opts;
  opts.durability.replicate_to = 1;
  opts.durability.persist_to = 1;
  auto r = client.Upsert("traced-key", "v1", opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const uint64_t trace_id = r->server.trace_id;
  ASSERT_NE(trace_id, 0u);

  // Ask the node that served the write for exactly that trace.
  auto dump = client.ObserveTraceFor("traced-key", trace_id);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  auto doc = json::Parse(*dump);
  ASSERT_TRUE(doc.ok()) << *dump;
  ASSERT_TRUE(doc->Field("node").is_number());
  ASSERT_TRUE(doc->Field("completed").is_array());
  const auto& completed = doc->Field("completed").AsArray();
  ASSERT_EQ(completed.size(), 1u) << *dump;
  const json::Value& rec = completed[0];
  EXPECT_EQ(rec.Field("trace_id").AsString(), std::to_string(trace_id));
  EXPECT_EQ(rec.Field("opcode").AsInt(),
            static_cast<int64_t>(wire::Opcode::kSet));
  EXPECT_EQ(rec.Field("status").AsInt(), 0);
  EXPECT_EQ(rec.Field("key_hash").AsInt(),
            static_cast<int64_t>(Crc32("traced-key")));
  EXPECT_LE(rec.Field("dispatch_us").AsInt() + rec.Field("engine_us").AsInt() +
                rec.Field("replicate_us").AsInt() +
                rec.Field("persist_us").AsInt(),
            rec.Field("total_us").AsInt());
}

TEST_F(WireTraceClusterTest, EveryDispatchedOpcodeIncrementsItsCounter) {
  auto scope = stats::Registry::Global().GetScope("wire");
  const std::vector<wire::Opcode> ops = {
      wire::Opcode::kGet,       wire::Opcode::kSet,
      wire::Opcode::kAdd,       wire::Opcode::kReplace,
      wire::Opcode::kDelete,    wire::Opcode::kNoop,
      wire::Opcode::kStat,      wire::Opcode::kTouch,
      wire::Opcode::kGetLocked, wire::Opcode::kUnlockKey,
      wire::Opcode::kGetClusterMap, wire::Opcode::kObserveTrace,
  };
  for (wire::Opcode op : ops) {
    const uint8_t code = static_cast<uint8_t>(op);
    SCOPED_TRACE(wire::OpcodeName(code));
    stats::Counter* c =
        scope->GetCounter(std::string("ops.") + wire::OpcodeName(code));
    const uint64_t before = c->Value();
    // The counter ticks at dispatch, before any validation: an empty-keyed
    // SET still counts as a SET hitting the wire.
    wire::Message req = wire::Message::Req(op);
    auto resp = client::RawRoundTrip(ports_[0], req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(c->Value(), before + 1);
  }
  // Unknown opcodes pool into ops.UNKNOWN.
  stats::Counter* unknown = scope->GetCounter("ops.UNKNOWN");
  const uint64_t before = unknown->Value();
  wire::Message req = wire::Message::Req(wire::Opcode::kGet);
  req.opcode = 0x42;
  auto resp = client::RawRoundTrip(ports_[0], req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, wire::kUnknownCommand);
  EXPECT_EQ(unknown->Value(), before + 1);
}

TEST_F(WireTraceClusterTest, WireStatsExposedOverStatAndPrometheus) {
  client::WireClient client(ports_, "default");
  ASSERT_TRUE(client.Upsert("stats-key", "v").ok());

  // STAT "wire" over the socket returns byte counters, per-opcode counts,
  // and the per-node phase histograms.
  auto stats_json = client.StatsFor("stats-key", "wire");
  ASSERT_TRUE(stats_json.ok()) << stats_json.status().ToString();
  auto doc = json::Parse(*stats_json);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->Field("wire.rx_bytes").is_number());
  EXPECT_TRUE(doc->Field("wire.tx_bytes").is_number());
  EXPECT_GT(doc->Field("wire.rx_bytes").AsInt(), 0);
  EXPECT_TRUE(doc->Field("wire.ops.SET").is_number());
  EXPECT_GT(doc->Field("wire.ops.SET").AsInt(), 0);
  bool found_hist = false;
  for (const auto& [name, v] : doc->AsObject()) {
    if (name.size() > 15 &&
        name.compare(name.size() - 15, 15, ".wire.server_ns") == 0) {
      found_hist = v.is_object() && v.Field("count").is_number();
    }
  }
  EXPECT_TRUE(found_hist) << *stats_json;

  // The same counters ride the existing Prometheus exposition.
  std::string prom =
      stats::ToPrometheusText(stats::Registry::Global().Collect("wire"));
  EXPECT_NE(prom.find("couchkv_wire_rx_bytes"), std::string::npos);
  EXPECT_NE(prom.find("couchkv_wire_ops_SET"), std::string::npos);
}

// --- Seed determinism ----------------------------------------------------

// The canonical projection of a recorder dump: everything except wall-clock
// times (timings differ run to run; identity must not).
std::string Canonical(const std::vector<stats::OpRecord>& records) {
  std::string out;
  for (const stats::OpRecord& r : records) {
    out += std::to_string(r.seq) + ":" + std::to_string(r.trace_id) + ":" +
           std::to_string(r.opcode) + ":" + std::to_string(r.vbucket) + ":" +
           std::to_string(r.key_hash) + ":" + std::to_string(r.status) + ";";
  }
  return out;
}

TEST(WireTraceDeterminism, SameSeedSameRecorderDumps) {
  constexpr uint64_t kSeed = 0xABCDEF01;
  auto run = [&]() -> std::vector<std::string> {
    cluster::Cluster cluster;
    for (int i = 0; i < 3; ++i) cluster.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    EXPECT_TRUE(cluster.CreateBucket(cfg).ok());
    EXPECT_TRUE(cluster.StartWireServers("default").ok());
    std::vector<uint16_t> ports;
    for (cluster::NodeId id : cluster.node_ids()) {
      ports.push_back(cluster.wire_port(id));
    }
    client::WireClient client(ports, "default", {}, kSeed);
    for (int i = 0; i < 20; ++i) {
      std::string key = "det-" + std::to_string(i);
      EXPECT_TRUE(client.Upsert(key, "v" + std::to_string(i)).ok());
      EXPECT_TRUE(client.Get(key).ok());
    }
    std::vector<std::string> dumps;
    for (cluster::NodeId id : cluster.node_ids()) {
      dumps.push_back(Canonical(cluster.node(id)->flight_recorder()
                                    ->Completed()));
    }
    return dumps;
  };
  std::vector<std::string> first = run();
  std::vector<std::string> second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "node " << i << " recorder diverged";
  }
  // The dumps actually contain traffic — determinism of empty dumps would
  // be vacuous.
  bool any = false;
  for (const std::string& d : first) any |= !d.empty();
  EXPECT_TRUE(any);
}

}  // namespace
}  // namespace couchkv
