// Tests for the YCSB workload generator and runner.
#include <gtest/gtest.h>

#include <map>

#include "ycsb/ycsb.h"

namespace couchkv::ycsb {
namespace {

TEST(WorkloadConfigTest, StandardMixesSumToOne) {
  for (const WorkloadConfig& c :
       {WorkloadConfig::A(10), WorkloadConfig::B(10), WorkloadConfig::C(10),
        WorkloadConfig::D(10), WorkloadConfig::E(10), WorkloadConfig::F(10)}) {
    double total = c.read_proportion + c.update_proportion +
                   c.insert_proportion + c.scan_proportion + c.rmw_proportion;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(WorkloadTest, KeysAreZeroPaddedAndOrdered) {
  EXPECT_EQ(Workload::KeyFor(0), "user00000000000000");
  EXPECT_EQ(Workload::KeyFor(123), "user00000000000123");
  EXPECT_LT(Workload::KeyFor(9), Workload::KeyFor(10));  // lexicographic
}

TEST(WorkloadTest, WorkloadAMixIsHalfReadsHalfUpdates) {
  std::atomic<uint64_t> counter{1000};
  Workload w(WorkloadConfig::A(1000), 1, &counter);
  std::map<OpType, int> histogram;
  for (int i = 0; i < 10000; ++i) histogram[w.Next().type]++;
  EXPECT_NEAR(histogram[OpType::kRead], 5000, 500);
  EXPECT_NEAR(histogram[OpType::kUpdate], 5000, 500);
  EXPECT_EQ(histogram[OpType::kScan], 0);
}

TEST(WorkloadTest, WorkloadEMixIsScansAndInserts) {
  std::atomic<uint64_t> counter{1000};
  Workload w(WorkloadConfig::E(1000), 2, &counter);
  std::map<OpType, int> histogram;
  for (int i = 0; i < 10000; ++i) {
    Op op = w.Next();
    histogram[op.type]++;
    if (op.type == OpType::kScan) {
      EXPECT_GE(op.scan_length, 1u);
      EXPECT_LE(op.scan_length, w.config().max_scan_length);
    }
  }
  EXPECT_NEAR(histogram[OpType::kScan], 9500, 400);
  EXPECT_NEAR(histogram[OpType::kInsert], 500, 300);
}

TEST(WorkloadTest, InsertsExtendTheKeySpace) {
  std::atomic<uint64_t> counter{100};
  WorkloadConfig cfg = WorkloadConfig::A(100);
  cfg.insert_proportion = 1.0;
  cfg.read_proportion = cfg.update_proportion = 0;
  Workload w(cfg, 3, &counter);
  Op op1 = w.Next();
  Op op2 = w.Next();
  EXPECT_EQ(op1.key, Workload::KeyFor(100));
  EXPECT_EQ(op2.key, Workload::KeyFor(101));
  EXPECT_EQ(counter.load(), 102u);
}

TEST(WorkloadTest, ZipfianKeysAreSkewedButScattered) {
  std::atomic<uint64_t> counter{10000};
  Workload w(WorkloadConfig::C(10000), 4, &counter);
  std::map<std::string, int> freq;
  for (int i = 0; i < 20000; ++i) freq[w.Next().key]++;
  // Some keys should be much hotter than average.
  int max_freq = 0;
  for (auto& [k, f] : freq) max_freq = std::max(max_freq, f);
  EXPECT_GT(max_freq, 50);
  // But accesses are scattered over a large portion of the space.
  EXPECT_GT(freq.size(), 1000u);
}

TEST(WorkloadTest, GeneratedValueIsJsonWithFields) {
  std::atomic<uint64_t> counter{10};
  WorkloadConfig cfg = WorkloadConfig::A(10);
  cfg.field_count = 3;
  cfg.field_length = 8;
  Workload w(cfg, 5, &counter);
  auto doc = json::Parse(w.GenerateValue());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsObject().size(), 3u);
  EXPECT_EQ(doc->Field("field0").AsString().size(), 8u);
}

TEST(RunnerTest, ExecutesRequestedOpsAcrossThreads) {
  std::atomic<uint64_t> reads{0}, updates{0};
  RunResult result;
  couchkv::ycsb::Run(WorkloadConfig::A(100), /*threads=*/4, /*ops_per_thread=*/250,
      [&](const Op& op) {
        if (op.type == OpType::kRead) reads.fetch_add(1);
        else updates.fetch_add(1);
        return Status::OK();
      },
      &result);
  EXPECT_EQ(result.total_ops, 1000u);
  EXPECT_EQ(reads.load() + updates.load(), 1000u);
  EXPECT_EQ(result.failed_ops, 0u);
  EXPECT_GT(result.throughput_ops_sec, 0.0);
  EXPECT_EQ(result.read_latency.count() + result.update_latency.count() +
                result.scan_latency.count(),
            1000u);
}

TEST(RunnerTest, CountsFailures) {
  RunResult result;
  couchkv::ycsb::Run(WorkloadConfig::C(10), 2, 50,
      [&](const Op&) { return Status::TempFail(); }, &result);
  EXPECT_EQ(result.failed_ops, 100u);
}

}  // namespace
}  // namespace couchkv::ycsb
