// Crash torture: kill a node mid-flusher-batch (torn write on its simulated
// disk), restart it through the real warmup path, and assert that every
// write acknowledged with persist_to=1 durability is still readable. Runs
// the same scenario for several seeds; each must pass — that is the
// determinism contract of the fault model.
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.h"
#include "harness/torture.h"
#include "net/faulty_transport.h"

namespace couchkv {
namespace {

class TortureCrashTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TortureCrashTest, PersistAckedWritesSurviveNodeCrash) {
  const uint64_t seed = GetParam();
  cluster::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 4;
  opts.ops_per_client = 150;
  opts.keys_per_client = 24;
  opts.write_fraction = 0.9;
  opts.persist_every = 4;  // every 4th write must survive the crash
  harness::TortureDriver driver(&cluster, "default", opts);

  // Phase 1: load up the cluster so node 0's flusher queue has work in
  // flight, then crash it mid-run. Workers keep going: ops routed to node
  // 0's partitions fail with TempFail and are recorded as in-doubt once the
  // client's retries are exhausted.
  std::thread crasher([&] {
    // Let the workload build a flusher backlog first.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(cluster.CrashNode(0).ok());
    driver.NoteCrash();
  });
  driver.Run();
  crasher.join();

  // Phase 2: restart through warmup. Replicated-but-unpersisted writes died
  // with the crash; replicas that ran ahead are rolled back by RestartNode.
  ASSERT_TRUE(cluster.RestartNode(0).ok());
  driver.Settle();

  // Invariants: nothing persist-acked may be missing, replicas converge on
  // the recovered actives, and every guaranteed-present key is reachable.
  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
}

TEST_P(TortureCrashTest, CrashWithFaultyTransportStillRecovers) {
  // Same crash scenario, but with a lossy network underneath: drops force
  // DCP streams to stall-and-retry and clients to retry, while the crash
  // tears a flusher batch. Durability and convergence must still hold.
  const uint64_t seed = GetParam();
  cluster::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());

  net::FaultyTransport transport(seed);
  net::LinkFaults lossy;
  lossy.drop = 0.05;
  lossy.max_latency_us = 50;
  transport.SetDefaultFaults(lossy);
  cluster.set_transport(&transport);

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 3;
  opts.ops_per_client = 100;
  opts.keys_per_client = 16;
  opts.persist_every = 5;
  harness::TortureDriver driver(&cluster, "default", opts);

  std::thread crasher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    ASSERT_TRUE(cluster.CrashNode(1).ok());
    driver.NoteCrash();
  });
  driver.Run();
  crasher.join();

  ASSERT_TRUE(cluster.RestartNode(1).ok());
  // Checks must observe a fault-free network: recovery correctness is the
  // claim under test, not checker retry behaviour.
  transport.Reset();
  driver.Settle();

  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
  cluster.set_transport(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureCrashTest,
                         ::testing::Values(1, 20260807, 0xc0ffee),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace couchkv
