// Tests for the observability layer: registry concurrency, group filtering,
// delta arithmetic, exposition formats, trace spans, scope lifecycle across
// bucket drop / node crash-restart, and the STATS scatter/gather access path
// over a faulty transport (partial results labeled, never silently merged).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "net/faulty_transport.h"
#include "stats/registry.h"
#include "stats/trace.h"

namespace couchkv::stats {
namespace {

// --- Counters / registry concurrency ---

TEST(StatsRegistryTest, ConcurrentAddsAreExact) {
  Scope scope("concurrency_test");
  Counter* c = scope.GetCounter("hits");
  Histogram* h = scope.GetHistogram("lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Record(1000);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Snapshot().count, uint64_t{kThreads} * kPerThread);
}

TEST(StatsRegistryTest, ConcurrentGetCounterReturnsSamePointer) {
  Scope scope("race");
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter* c = scope.GetCounter("shared");
      c->Add();
      seen[t] = c;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), uint64_t{kThreads});
}

TEST(StatsRegistryTest, ScopePointersSurviveDrop) {
  auto& reg = Registry::Global();
  auto scope = reg.GetScope("ephemeral.scope");
  Counter* c = scope->GetCounter("events");
  c->Add(3);
  reg.DropScope("ephemeral.scope");
  EXPECT_FALSE(reg.HasScope("ephemeral.scope"));
  // Holders of the shared_ptr may keep updating; storage stays valid.
  c->Add(2);
  EXPECT_EQ(c->Value(), 5u);
  // A re-created scope starts from zero.
  auto fresh = reg.GetScope("ephemeral.scope");
  EXPECT_EQ(fresh->GetCounter("events")->Value(), 0u);
  reg.DropScope("ephemeral.scope");
}

// --- Group matching ---

TEST(StatsRegistryTest, MatchesGroupOnSegmentBoundaries) {
  EXPECT_TRUE(MatchesGroup("node.0.bucket.b.kv.ops_get", "kv"));
  EXPECT_TRUE(MatchesGroup("node.0.bucket.b.kv.ops_get", "kv.ops_get"));
  EXPECT_TRUE(MatchesGroup("transport.node.0.sent", "transport"));
  EXPECT_TRUE(MatchesGroup("node.0.bucket.b.storage.commits", "storage"));
  EXPECT_TRUE(MatchesGroup("anything.at.all", ""));
  // Substrings that are not whole segments must not match.
  EXPECT_FALSE(MatchesGroup("node.0.bucket.b.kv.ops_get", "ops"));
  EXPECT_FALSE(MatchesGroup("node.0.bucket.b.kv.ops_get", "v"));
  EXPECT_FALSE(MatchesGroup("node.0.bucket.b.kv.ops_get", "dcp"));
}

TEST(StatsRegistryTest, CollectFiltersByGroup) {
  Scope scope("filter_test");
  scope.GetCounter("kv.hits")->Add(1);
  scope.GetCounter("storage.commits")->Add(2);
  Snapshot all;
  scope.Collect(&all);
  EXPECT_EQ(all.size(), 2u);
  Snapshot kv_only;
  scope.Collect(&kv_only, "kv");
  ASSERT_EQ(kv_only.size(), 1u);
  EXPECT_EQ(kv_only.count("filter_test.kv.hits"), 1u);
}

// --- Delta ---

TEST(StatsRegistryTest, DeltaSubtractsCountersKeepsGauges) {
  Scope scope("delta_test");
  Counter* c = scope.GetCounter("ops");
  Gauge* g = scope.GetGauge("depth");
  Histogram* h = scope.GetHistogram("lat");
  c->Add(10);
  g->Set(7);
  h->Record(500);
  Snapshot before;
  scope.Collect(&before);
  c->Add(5);
  g->Set(3);
  h->Record(900);
  scope.GetCounter("born_later")->Add(2);
  Snapshot after;
  scope.Collect(&after);

  Snapshot d = Delta(before, after);
  EXPECT_EQ(d.at("delta_test.ops").counter, 5u);
  EXPECT_EQ(d.at("delta_test.depth").gauge, 3);
  EXPECT_EQ(d.at("delta_test.lat").hist.count, 1u);
  // Metrics born mid-interval pass through unchanged.
  EXPECT_EQ(d.at("delta_test.born_later").counter, 2u);
}

// --- Exposition ---

TEST(StatsExpositionTest, JsonGolden) {
  Scope scope("expo");
  scope.GetCounter("ops")->Add(42);
  scope.GetGauge("depth")->Set(-3);
  Snapshot snap;
  scope.Collect(&snap);
  EXPECT_EQ(ToJson(snap), "{\"expo.depth\":-3,\"expo.ops\":42}");
}

TEST(StatsExpositionTest, JsonHistogramHasPercentiles) {
  Scope scope("expoh");
  Histogram* h = scope.GetHistogram("lat_ns");
  for (int i = 1; i <= 100; ++i) h->Record(static_cast<uint64_t>(i) * 1000);
  Snapshot snap;
  scope.Collect(&snap);
  std::string json = ToJson(snap);
  EXPECT_NE(json.find("\"expoh.lat_ns\":{"), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50_us\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\":"), std::string::npos);
}

TEST(StatsExpositionTest, PrometheusGolden) {
  Scope scope("expo.prom");
  scope.GetCounter("ops")->Add(7);
  Snapshot snap;
  scope.Collect(&snap);
  EXPECT_EQ(ToPrometheusText(snap),
            "# TYPE couchkv_expo_prom_ops counter\n"
            "couchkv_expo_prom_ops 7\n");
}

TEST(StatsExpositionTest, PrometheusHistogramIsSummary) {
  Scope scope("promh");
  Histogram* h = scope.GetHistogram("lat");
  h->Record(1000);
  h->Record(2000);
  Snapshot snap;
  scope.Collect(&snap);
  std::string text = ToPrometheusText(snap);
  EXPECT_NE(text.find("# TYPE couchkv_promh_lat summary"), std::string::npos);
  EXPECT_NE(text.find("couchkv_promh_lat{quantile=\"0.50\"}"),
            std::string::npos);
  EXPECT_NE(text.find("couchkv_promh_lat_count 2"), std::string::npos);
  EXPECT_NE(text.find("couchkv_promh_lat_sum 3000"), std::string::npos);
}

TEST(StatsExpositionTest, DebugStringSkipsZeros) {
  Scope scope("dbg");
  scope.GetCounter("zero");
  scope.GetCounter("nonzero")->Add(1);
  Snapshot snap;
  scope.Collect(&snap);
  std::string s = DebugString(snap);
  EXPECT_EQ(s.find("dbg.zero"), std::string::npos);
  EXPECT_NE(s.find("dbg.nonzero=1"), std::string::npos);
}

// --- Trace spans ---

TEST(TraceSpanTest, RecordsIntoHistogram) {
  Histogram h;
  {
    trace::Span span("test.op", &h);
    span.Phase("one");
    span.Phase("two");
  }
  EXPECT_EQ(h.Snapshot().count, 1u);
}

TEST(TraceSpanTest, FinishIsIdempotent) {
  Histogram h;
  trace::Span span("test.op", &h);
  span.Finish();
  span.Finish();  // and once more from the destructor
  EXPECT_EQ(h.Snapshot().count, 1u);
}

TEST(TraceSpanTest, ThresholdKnobRoundTrips) {
  uint64_t prev = trace::SlowOpThresholdUs();
  trace::SetSlowOpThresholdUs(12345);
  EXPECT_EQ(trace::SlowOpThresholdUs(), 12345u);
  trace::SetSlowOpThresholdUs(prev);
}

// --- Scope lifecycle on a live cluster ---

class StatsClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) cluster_.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
  }

  cluster::Cluster cluster_;
};

TEST_F(StatsClusterTest, NodeAndBucketScopesRegistered) {
  auto& reg = Registry::Global();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(reg.HasScope("node." + std::to_string(i)));
    EXPECT_TRUE(
        reg.HasScope("node." + std::to_string(i) + ".bucket.default"));
  }
}

TEST_F(StatsClusterTest, CrashDropsBucketScopeRestartRecreatesIt) {
  auto& reg = Registry::Global();
  ASSERT_TRUE(reg.HasScope("node.1.bucket.default"));
  ASSERT_TRUE(cluster_.CrashNode(1).ok());
  EXPECT_FALSE(reg.HasScope("node.1.bucket.default"));
  // The node scope survives a crash (the Node object lives on, unhealthy).
  EXPECT_TRUE(reg.HasScope("node.1"));
  ASSERT_TRUE(cluster_.RestartNode(1).ok());
  EXPECT_TRUE(reg.HasScope("node.1.bucket.default"));
}

TEST_F(StatsClusterTest, NodeStatsCoversKvStorageDcpTransport) {
  client::SmartClient client(&cluster_, "default");
  for (int i = 0; i < 64; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(client.Upsert(key, "{\"v\":1}").ok());
    ASSERT_TRUE(client.Get(key).ok());
  }
  cluster_.Quiesce();

  auto snap = cluster_.node(0)->Stats();
  ASSERT_TRUE(snap.ok());
  bool kv = false, storage = false, dcp = false, transport = false;
  for (const auto& [name, value] : *snap) {
    if (MatchesGroup(name, "kv")) kv = true;
    if (MatchesGroup(name, "storage")) storage = true;
    if (MatchesGroup(name, "dcp")) dcp = true;
    if (MatchesGroup(name, "transport")) transport = true;
  }
  EXPECT_TRUE(kv);
  EXPECT_TRUE(storage);
  EXPECT_TRUE(dcp);
  EXPECT_TRUE(transport);
  // The group filter narrows the scrape to one subsystem.
  auto kv_only = cluster_.node(0)->Stats("kv");
  ASSERT_TRUE(kv_only.ok());
  EXPECT_FALSE(kv_only->empty());
  for (const auto& [name, value] : *kv_only) {
    EXPECT_TRUE(MatchesGroup(name, "kv")) << name;
  }
}

TEST_F(StatsClusterTest, CrashedNodeRefusesStats) {
  ASSERT_TRUE(cluster_.CrashNode(2).ok());
  EXPECT_TRUE(cluster_.node(2)->Stats().status().IsTempFail());
  ASSERT_TRUE(cluster_.RestartNode(2).ok());
  EXPECT_TRUE(cluster_.node(2)->Stats().ok());
}

// --- ClusterStats scatter/gather ---

TEST_F(StatsClusterTest, ClusterStatsReachesEveryNode) {
  client::SmartClient client(&cluster_, "default");
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(client.Upsert("k" + std::to_string(i), "{}").ok());
  }
  cluster_.Quiesce();
  auto result = client.ClusterStats();
  ASSERT_EQ(result.nodes.size(), 4u);
  for (const auto& node : result.nodes) {
    EXPECT_TRUE(node.reachable) << "node " << node.node << ": " << node.error;
    EXPECT_FALSE(node.stats.empty());
    // Every node reports its own ops and its own transport slice.
    std::string prefix = "node." + std::to_string(node.node) + ".";
    bool own_metrics = false;
    for (const auto& [name, value] : node.stats) {
      if (name.rfind(prefix, 0) == 0) own_metrics = true;
      if (name.rfind("transport.node.", 0) == 0) {
        EXPECT_EQ(name.rfind("transport.node." + std::to_string(node.node) +
                                 ".",
                             0),
                  0u)
            << "foreign transport slice in node stats: " << name;
      }
    }
    EXPECT_TRUE(own_metrics);
  }
}

TEST_F(StatsClusterTest, ClusterStatsLabelsUnreachableNodes) {
  net::FaultyTransport faulty(/*seed=*/42);
  cluster_.set_transport(&faulty);
  faulty.IsolateNode(3);

  client::SmartClient client(&cluster_, "default");
  auto result = client.ClusterStats();
  cluster_.set_transport(nullptr);

  ASSERT_EQ(result.nodes.size(), 4u);
  int reachable = 0;
  for (const auto& node : result.nodes) {
    if (node.reachable) {
      ++reachable;
      EXPECT_TRUE(node.error.empty());
    } else {
      EXPECT_EQ(node.node, 3u);
      EXPECT_FALSE(node.error.empty());
      EXPECT_TRUE(node.stats.empty());
    }
  }
  EXPECT_EQ(reachable, 3);
}

TEST_F(StatsClusterTest, CrashedNodeLabeledNotMerged) {
  ASSERT_TRUE(cluster_.CrashNode(1).ok());
  client::SmartClient client(&cluster_, "default");
  auto result = client.ClusterStats();
  ASSERT_EQ(result.nodes.size(), 4u);
  for (const auto& node : result.nodes) {
    if (node.node == 1) {
      EXPECT_FALSE(node.reachable);
      EXPECT_FALSE(node.error.empty());
    } else {
      EXPECT_TRUE(node.reachable) << node.error;
    }
  }
}

}  // namespace
}  // namespace couchkv::stats
