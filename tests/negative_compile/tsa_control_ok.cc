// Positive control for the configure-time negative-compile harness: correct
// lock discipline through the annotated types. This file MUST compile under
// -Werror=thread-safety; if it does not, the harness itself is broken.
#include "common/synchronization.h"

namespace {

class Account {
 public:
  void Deposit(int amount) EXCLUDES(mu_) {
    couchkv::LockGuard lock(mu_);
    balance_ += amount;
  }

  int Balance() const EXCLUDES(mu_) {
    couchkv::LockGuard lock(mu_);
    return BalanceLocked();
  }

 private:
  int BalanceLocked() const REQUIRES(mu_) { return balance_; }

  mutable couchkv::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

void TsaControlUse() {
  Account a;
  a.Deposit(1);
  (void)a.Balance();
}
