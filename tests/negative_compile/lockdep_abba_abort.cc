// Must-ABORT case for the configure-time lockdep liveness proof (try_run
// in the top-level CMakeLists.txt): this program seeds an ABBA lock-order
// inversion on one thread. A live detector reports the inversion and
// aborts before the second sequence completes; if this program ever exits
// 0, lockdep has silently stopped detecting and the configure step fails.
//
// Single-TU harness: try_run cannot link project libraries at configure
// time, so the detector is compiled into this program directly.
#include "common/synchronization.h"

#include "common/lockdep.cc"  // NOLINT

int main() {
  using namespace couchkv;
  static_assert(lockdep::kEnabled,
                "liveness proof must compile with -DCOUCHKV_LOCKDEP");
  Mutex a{"proof.abba_a"};
  Mutex b{"proof.abba_b"};
  {
    LockGuard la(a);
    LockGuard lb(b);  // edge abba_a -> abba_b
  }
  {
    LockGuard lb(b);
    LockGuard la(a);  // inversion: lockdep must abort here
  }
  return 0;  // reaching this line means the detector is dead
}
