// Must-SUCCEED control for the configure-time affinity liveness proof
// (try_run in the top-level CMakeLists.txt): a thread that adopts the
// domain an Affine checker declares must pass AssertAffine silently, and
// nested ScopedDomain adoption must restore the previous domain. If this
// program aborts, the liveness-proof harness itself is broken.
//
// Single-TU harness: try_run cannot link project libraries at configure
// time, so the runtime is compiled into this program directly.
#include <cstring>

#include "common/affinity.h"

#include "common/affinity.cc"  // NOLINT

int main() {
  using namespace couchkv::affinity;
  static_assert(kEnabled,
                "liveness proof must compile with -DCOUCHKV_AFFINITY");
  if (std::strcmp(CurrentDomainName(), "client") != 0) return 1;
  Affine checker{"proof.state", "proof.domain"};
  {
    ScopedDomain domain("proof.domain");
    if (std::strcmp(CurrentDomainName(), "proof.domain") != 0) return 2;
    checker.AssertAffine();  // declared domain: must pass silently
    {
      ScopedDomain nested("proof.nested");
      if (std::strcmp(CurrentDomainName(), "proof.nested") != 0) return 3;
    }
    if (std::strcmp(CurrentDomainName(), "proof.domain") != 0) return 4;
    checker.AssertAffine();
  }
  if (std::strcmp(CurrentDomainName(), "client") != 0) return 5;
  if (ViolationReports() != 0) return 6;
  return 0;
}
