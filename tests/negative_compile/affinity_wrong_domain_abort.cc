// Must-ABORT case for the configure-time affinity liveness proof (try_run
// in the top-level CMakeLists.txt): this program touches state declared
// affine to one domain from a thread running in another. A live checker
// aborts on the AssertAffine, naming both domains; if this program ever
// exits 0, the affinity runtime has silently stopped checking and the
// configure step fails.
//
// Single-TU harness: try_run cannot link project libraries at configure
// time, so the runtime is compiled into this program directly.
#include "common/affinity.h"

#include "common/affinity.cc"  // NOLINT

int main() {
  using namespace couchkv::affinity;
  static_assert(kEnabled,
                "liveness proof must compile with -DCOUCHKV_AFFINITY");
  Affine checker{"proof.state", "proof.owner"};
  ScopedDomain domain("proof.intruder");
  checker.AssertAffine();  // wrong domain: the checker must abort here
  return 0;  // reaching this line means the checker is dead
}
