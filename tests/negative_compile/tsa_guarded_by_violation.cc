// Seeded violation: writes a GUARDED_BY field without holding its mutex.
// This file MUST FAIL to compile under -Werror=thread-safety. If it ever
// compiles, the annotation macros have silently become no-ops and the
// configure step aborts (see the negative-compile block in CMakeLists.txt).
#include "common/synchronization.h"

namespace {

class Account {
 public:
  // BUG (intentional): no lock taken around the guarded write.
  void Deposit(int amount) { balance_ += amount; }

 private:
  couchkv::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

void TsaViolationUse() {
  Account a;
  a.Deposit(1);
}
