// Positive control for the configure-time lockdep liveness proof
// (try_run in the top-level CMakeLists.txt): a consistent A-then-B
// acquisition order MUST run to completion (exit 0) with exactly one
// class-level edge recorded. If this fails, the proof harness itself is
// broken — fix it before trusting the must-abort case.
//
// Single-TU harness: try_run cannot link project libraries at configure
// time, so the detector is compiled into this program directly.
#include "common/synchronization.h"

#include "common/lockdep.cc"  // NOLINT

int main() {
  using namespace couchkv;
  static_assert(lockdep::kEnabled,
                "liveness proof must compile with -DCOUCHKV_LOCKDEP");
  Mutex a{"proof.order_a"};
  Mutex b{"proof.order_b"};
  for (int i = 0; i < 3; ++i) {
    LockGuard la(a);
    LockGuard lb(b);
  }
  return lockdep::EdgeCount() == 1 ? 0 : 1;
}
