// Seeded error-discipline violation: drops a returned StatusOr<T> on the
// floor. This file MUST FAIL to compile under -Werror=unused-result. If it
// compiles, the [[nodiscard]] attribute on StatusOr (or the -Werror flag)
// has silently rotted and ignoring errors is no longer a compile failure.
#include "common/status.h"

namespace {

couchkv::StatusOr<int> Compute() {
  return couchkv::Status::Corruption("bad checksum");
}

}  // namespace

void NodiscardStatusOrViolation() {
  Compute();  // value-or-error swallowed — the compiler must reject this
}
