// Seeded error-discipline violation: drops a returned Status on the floor.
// This file MUST FAIL to compile under -Werror=unused-result. If it
// compiles, the [[nodiscard]] attribute on Status (or the -Werror flag) has
// silently rotted and ignoring errors is no longer a compile failure.
#include "common/status.h"

namespace {

couchkv::Status DoWork() { return couchkv::Status::IOError("disk on fire"); }

}  // namespace

void NodiscardStatusViolation() {
  DoWork();  // error swallowed — the compiler must reject this
}
