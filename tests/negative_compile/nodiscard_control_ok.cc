// Positive control for the nodiscard negative-compile harness: correct
// error handling — every returned Status/StatusOr is consumed. This file
// MUST compile under -Werror=unused-result; if it does not, the harness
// itself is broken.
#include "common/status.h"

namespace {

couchkv::Status DoWork() { return couchkv::Status::OK(); }

couchkv::StatusOr<int> Compute() { return 42; }

}  // namespace

couchkv::Status NodiscardControlUse() {
  COUCHKV_RETURN_IF_ERROR(DoWork());
  auto v = Compute();
  if (!v.ok()) return v.status();
  // A deliberate discard with the documented escape hatch also compiles.
  // justified: negative-compile control exercising the (void) idiom itself.
  (void)DoWork();
  return couchkv::Status::OK();
}
