// Seeded violation: calls a REQUIRES(mu_) helper without holding the lock.
// This file MUST FAIL to compile under -Werror=thread-safety. If it ever
// compiles, the annotation macros have silently become no-ops and the
// configure step aborts (see the negative-compile block in CMakeLists.txt).
#include "common/synchronization.h"

namespace {

class Account {
 public:
  // BUG (intentional): BalanceLocked requires mu_, but no lock is taken.
  int Balance() const { return BalanceLocked(); }

 private:
  int BalanceLocked() const REQUIRES(mu_) { return balance_; }

  mutable couchkv::Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

void TsaViolationUse() {
  Account a;
  (void)a.Balance();
}
