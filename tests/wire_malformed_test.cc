// Malformed-input robustness for the wire stack: hand-built bad frames
// (wrong magic, corrupt lengths, truncated headers, unknown opcodes) and
// seeded byte-mutation fuzz of valid frames, both against the pure
// FrameDecoder and against a live TcpServer over real sockets. The
// contract everywhere: a clean protocol error or connection close — never
// a crash, a hang, or a sanitizer report — and the server keeps serving
// well-formed clients afterwards.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "client/wire_client.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "net/tcp_server.h"
#include "net/wire/wire.h"

namespace couchkv {
namespace {

namespace wire = net::wire;

// A well-formed SET frame to corrupt.
std::string ValidSetFrame() {
  wire::Message m = wire::Message::Req(wire::Opcode::kSet);
  m.vbucket = 3;
  m.opaque = 0xC0FFEE;
  wire::PutMutationExtras(&m.extras, 7, 0);
  m.key = "fuzz-key";
  m.value = "fuzz-value-payload";
  std::string out;
  EXPECT_TRUE(wire::Encode(m, &out).ok());
  return out;
}

// Feeds `bytes` to a fresh request-side decoder and drains it. The only
// assertion is termination with a sane result stream: frames, then either
// kNeedMore (truncated input) or one kError (poisoned thereafter).
void DrainDecoder(const std::string& bytes) {
  wire::FrameDecoder dec(wire::kMagicRequest);
  dec.Feed(bytes);
  wire::Message out;
  Status error = Status::OK();
  for (int i = 0; i < 1000; ++i) {
    wire::FrameDecoder::Result r = dec.Next(&out, &error);
    if (r == wire::FrameDecoder::Result::kFrame) continue;
    if (r == wire::FrameDecoder::Result::kNeedMore) return;
    // kError: poisoned; the next pull must error again, not resync.
    EXPECT_FALSE(error.ok());
    EXPECT_TRUE(dec.poisoned());
    EXPECT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kError);
    return;
  }
  FAIL() << "decoder neither drained nor errored after 1000 pulls";
}

// --- Decoder: hand-built violations -------------------------------------

TEST(WireMalformed, DecoderRejectsBadMagic) {
  std::string frame = ValidSetFrame();
  frame[0] = '\x79';
  wire::FrameDecoder dec(wire::kMagicRequest);
  dec.Feed(frame);
  wire::Message out;
  Status error = Status::OK();
  ASSERT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kError);
  EXPECT_EQ(error.code(), StatusCode::kParseError);
  EXPECT_TRUE(dec.poisoned());
}

TEST(WireMalformed, DecoderRejectsResponseMagicOnServerSide) {
  // A response frame arriving where requests are expected is a violation
  // even though the magic is a legal protocol constant.
  wire::Message m = wire::Message::Resp(
      wire::Message::Req(wire::Opcode::kGet), wire::kSuccess);
  std::string frame;
  ASSERT_TRUE(wire::Encode(m, &frame).ok());
  wire::FrameDecoder dec(wire::kMagicRequest);
  dec.Feed(frame);
  wire::Message out;
  Status error = Status::OK();
  EXPECT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kError);
}

TEST(WireMalformed, DecoderRejectsNonzeroDataType) {
  std::string frame = ValidSetFrame();
  frame[5] = '\x01';
  wire::FrameDecoder dec(wire::kMagicRequest);
  dec.Feed(frame);
  wire::Message out;
  Status error = Status::OK();
  ASSERT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kError);
  EXPECT_EQ(error.code(), StatusCode::kParseError);
}

TEST(WireMalformed, DecoderRejectsOversizedBodyLengthWithoutBuffering) {
  // A header advertising a body over the cap must error immediately from
  // the header alone — not wait for (or buffer) gigabytes that never come.
  std::string frame = ValidSetFrame().substr(0, wire::kHeaderSize);
  frame[8] = '\x7f';  // total body length = 0x7fffffff
  frame[9] = '\xff';
  frame[10] = '\xff';
  frame[11] = '\xff';
  wire::FrameDecoder dec(wire::kMagicRequest);
  dec.Feed(frame);
  wire::Message out;
  Status error = Status::OK();
  ASSERT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
}

TEST(WireMalformed, DecoderRejectsExtrasAndKeyExceedingBody) {
  std::string frame = ValidSetFrame();
  // Claim a 300-byte key inside the unchanged (smaller) body length.
  frame[2] = '\x01';
  frame[3] = '\x2c';
  wire::FrameDecoder dec(wire::kMagicRequest);
  dec.Feed(frame);
  wire::Message out;
  Status error = Status::OK();
  ASSERT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kError);
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
}

TEST(WireMalformed, TruncatedHeaderIsNeedMoreNotError) {
  std::string frame = ValidSetFrame();
  for (size_t cut = 0; cut < wire::kHeaderSize; ++cut) {
    wire::FrameDecoder dec(wire::kMagicRequest);
    dec.Feed(std::string_view(frame).substr(0, cut));
    wire::Message out;
    Status error = Status::OK();
    EXPECT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(WireMalformed, PoisonedDecoderIgnoresLaterValidFrames) {
  std::string bad = ValidSetFrame();
  bad[0] = '\x13';
  wire::FrameDecoder dec(wire::kMagicRequest);
  dec.Feed(bad);
  wire::Message out;
  Status error = Status::OK();
  ASSERT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kError);
  // Resynchronizing inside a corrupt byte stream is guesswork; even a
  // pristine frame after the damage must not be served.
  dec.Feed(ValidSetFrame());
  EXPECT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kError);
  EXPECT_TRUE(dec.poisoned());
}

// --- Decoder: seeded mutation fuzz --------------------------------------

TEST(WireMalformed, SeededByteMutationFuzzOverDecoder) {
  const std::string valid = ValidSetFrame();
  Rng rng(20260808);
  for (int iter = 0; iter < 500; ++iter) {
    std::string frame = valid + valid;  // two frames: damage may span both
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      frame[rng.Uniform(frame.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    DrainDecoder(frame);
  }
}

// --- Sockets: a live server must shrug all of this off ------------------

// Standalone echo server: malformed-input handling lives in TcpServer +
// FrameDecoder, so no cluster is needed and the error counters are
// directly observable.
class WireSocketAbuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<net::TcpServer>(
        [](const wire::Message& req, const net::RequestContext&) {
          return wire::Message::Resp(req, wire::kSuccess);
        });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  // Connects, writes `bytes`, then reads until the server closes the
  // connection or 2 s pass. Bounded on purpose: a hang here IS the bug
  // this suite exists to catch.
  void BlastRaw(const std::string& bytes) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    if (!bytes.empty()) {
      ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
                static_cast<ssize_t>(bytes.size()));
    }
    // Half-close: the server sees EOF after our bytes, so a frame left
    // incomplete (or a conn it would otherwise hold open after answering)
    // resolves promptly instead of riding out the recv timeout.
    ::shutdown(fd, SHUT_WR);
    char buf[4096];
    while (true) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;  // closed (0), or timeout/reset (<0): both fine
    }
    ::close(fd);
  }

  // The liveness probe: after any abuse the server must still answer a
  // well-formed client on a fresh connection.
  void ExpectServerStillServes() {
    ASSERT_TRUE(server_->running());
    wire::Message noop = wire::Message::Req(wire::Opcode::kNoop);
    noop.opaque = 424242;
    auto resp = client::RawRoundTrip(server_->port(), noop);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, wire::kSuccess);
    EXPECT_EQ(resp->opaque, 424242u);
  }

  std::unique_ptr<net::TcpServer> server_;
};

TEST_F(WireSocketAbuseTest, HandBuiltBadFramesCloseCleanly) {
  const uint64_t errors_before = server_->protocol_errors();

  std::string bad_magic = ValidSetFrame();
  bad_magic[0] = '\x42';
  BlastRaw(bad_magic);

  std::string huge_body = ValidSetFrame().substr(0, wire::kHeaderSize);
  huge_body[8] = '\x7f';
  huge_body[9] = '\xff';
  huge_body[10] = '\xff';
  huge_body[11] = '\xff';
  BlastRaw(huge_body);

  std::string bad_datatype = ValidSetFrame();
  bad_datatype[5] = '\x09';
  BlastRaw(bad_datatype);

  // Truncated header followed by our close: an EOF mid-frame is not a
  // protocol error, just a departed client.
  BlastRaw(ValidSetFrame().substr(0, 10));
  // A connection that opens and says nothing at all.
  BlastRaw("");

  EXPECT_GE(server_->protocol_errors(), errors_before + 3);
  ExpectServerStillServes();
}

TEST_F(WireSocketAbuseTest, SeededByteMutationFuzzOverSocket) {
  const std::string valid = ValidSetFrame();
  Rng rng(424242);
  for (int iter = 0; iter < 100; ++iter) {
    std::string frame = valid;
    const int flips = 1 + static_cast<int>(rng.Uniform(3));
    for (int f = 0; f < flips; ++f) {
      frame[rng.Uniform(frame.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    // Sometimes truncate as well, so damaged lengths meet early EOF.
    if (rng.OneIn(3)) frame.resize(rng.Uniform(frame.size()) + 1);
    BlastRaw(frame);
  }
  ExpectServerStillServes();
  // Every accepted connection from the loop must have been reaped into a
  // terminal state; total accepted = 100 fuzz + 1 probe (+ SetUp's none).
  EXPECT_GE(server_->connections_accepted(), 101u);
}

TEST_F(WireSocketAbuseTest, PipelinedGarbageAfterValidFramesServesPrefix) {
  // Two good frames then garbage in one burst: both good frames are
  // answered, the garbage kills the connection, the server survives.
  wire::Message a = wire::Message::Req(wire::Opcode::kNoop);
  a.opaque = 1;
  wire::Message b = wire::Message::Req(wire::Opcode::kNoop);
  b.opaque = 2;
  std::string burst;
  ASSERT_TRUE(wire::Encode(a, &burst).ok());
  ASSERT_TRUE(wire::Encode(b, &burst).ok());
  std::string junk = ValidSetFrame();
  junk[0] = '\x55';
  burst += junk;

  const uint64_t frames_before = server_->frames_served();
  const uint64_t errors_before = server_->protocol_errors();
  BlastRaw(burst);
  EXPECT_GE(server_->frames_served(), frames_before + 2);
  EXPECT_GE(server_->protocol_errors(), errors_before + 1);
  ExpectServerStillServes();
}

// Unknown opcodes are a semantic error, not a framing error: the service
// answers kUnknownCommand and the connection stays usable. That dispatch
// lives in the cluster's WireService, so this one runs against a node.
TEST(WireMalformedCluster, UnknownOpcodeAnswersAndConnectionSurvives) {
  cluster::Cluster cluster;
  cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 0;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());
  ASSERT_TRUE(cluster.StartWireServers("default").ok());
  const uint16_t port = cluster.wire_port(0);
  ASSERT_NE(port, 0);

  wire::Message unknown;
  unknown.magic = wire::kMagicRequest;
  unknown.opcode = 0xee;
  unknown.opaque = 5;
  wire::Message noop = wire::Message::Req(wire::Opcode::kNoop);
  noop.opaque = 6;

  // Same connection: the unknown opcode is answered, then the NOOP after
  // it still goes through.
  auto resps = client::RawPipeline(port, {unknown, noop});
  ASSERT_TRUE(resps.ok()) << resps.status().ToString();
  ASSERT_EQ(resps->size(), 2u);
  EXPECT_EQ((*resps)[0].status, wire::kUnknownCommand);
  EXPECT_EQ((*resps)[0].opaque, 5u);
  EXPECT_EQ((*resps)[1].status, wire::kSuccess);
  EXPECT_EQ((*resps)[1].opaque, 6u);
}

}  // namespace
}  // namespace couchkv
