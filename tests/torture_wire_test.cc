// Socket-level torture: the crash / partition / failover scenarios from the
// existing torture suites, replayed with every admitted transport leg
// crossing a real TCP connection (net::SocketTransport against each node's
// wire listener). The durability and convergence invariants must hold over
// actual sockets — reconnects, kernel buffering, ephemeral-port reassignment
// after a restart and all — and each test proves traffic really crossed the
// wire via the transport's round-trip counter. Seeds are reduced relative
// to the in-process suites: every leg costs a kernel round-trip.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "cluster/cluster.h"
#include "harness/torture.h"
#include "net/faulty_transport.h"
#include "net/socket_transport.h"

namespace couchkv {
namespace {

class TortureWireTest : public ::testing::TestWithParam<uint64_t> {};

// The crash-torture scenario over sockets: kill a node mid-workload (its
// listener dies with it), restart it onto a FRESH ephemeral port, and
// require every persist-acked write back. The port resolver is queried per
// hop, so recovery hinges on re-resolution actually working.
TEST_P(TortureWireTest, PersistAckedWritesSurviveCrashOverSockets) {
  const uint64_t seed = GetParam();
  cluster::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());
  ASSERT_TRUE(cluster.StartWireServers("default").ok());

  net::SocketTransport transport(cluster.WirePortResolver());
  cluster.set_transport(&transport);

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 3;
  opts.ops_per_client = 80;
  opts.keys_per_client = 12;
  opts.write_fraction = 0.9;
  opts.persist_every = 4;
  harness::TortureDriver driver(&cluster, "default", opts);

  std::thread crasher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(cluster.CrashNode(0).ok());
    driver.NoteCrash();
  });
  driver.Run();
  crasher.join();

  // While down, the node's resolver entry is 0 ("no listener"): ops to it
  // failed at connect, exactly like a dead process on a real network.
  ASSERT_TRUE(cluster.RestartNode(0).ok());
  EXPECT_NE(cluster.wire_port(0), 0);
  driver.Settle();

  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
  // Proof the workload crossed the kernel, not an in-process shortcut.
  EXPECT_GT(transport.round_trips(), 0u);
  cluster.set_transport(nullptr);
}

// The partition scenario over sockets, with FaultyTransport composed as the
// admission filter: its seeded schedule decides each leg's fate first, and
// only admitted legs touch a socket — the deterministic fault model and the
// real wire coexist.
TEST_P(TortureWireTest, IsolatedNodeCatchesUpAfterHealOverSockets) {
  const uint64_t seed = GetParam();
  cluster::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());
  ASSERT_TRUE(cluster.StartWireServers("default").ok());

  net::FaultyTransport faults(seed);
  net::LinkFaults lossy;
  lossy.drop = 0.02;
  lossy.max_latency_us = 30;
  faults.SetDefaultFaults(lossy);
  net::SocketTransport transport(cluster.WirePortResolver(), &faults);
  cluster.set_transport(&transport);

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 3;
  opts.ops_per_client = 60;
  opts.keys_per_client = 12;
  opts.persist_every = 0;
  harness::TortureDriver driver(&cluster, "default", opts);

  // Cut node 2 off from node-to-node traffic only: clients still reach it
  // over their sockets, but replication in and out of it stalls until the
  // heal.
  faults.Block(net::Endpoint::Node(0), net::Endpoint::Node(2));
  faults.Block(net::Endpoint::Node(1), net::Endpoint::Node(2));
  faults.Block(net::Endpoint::Node(2), net::Endpoint::Node(0));
  faults.Block(net::Endpoint::Node(2), net::Endpoint::Node(1));
  driver.Run();
  EXPECT_GT(faults.stats().blocked, 0u);

  // Checks observe a fault-free (but still socket-backed) network.
  faults.Reset();
  driver.Settle();

  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
  EXPECT_GT(transport.round_trips(), 0u);
  cluster.set_transport(nullptr);
}

// Crash + manual failover + delta recovery, all over sockets: the failed
// node leaves the map, is rebooted and reintegrated by RecoverNode — which
// must also bring its wire listener back (on a fresh port) or the recovered
// actives would be unreachable for every later leg.
TEST_P(TortureWireTest, FailoverThenRecoverNodeConvergesOverSockets) {
  const uint64_t seed = GetParam();
  cluster::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());
  ASSERT_TRUE(cluster.StartWireServers("default").ok());

  net::SocketTransport transport(cluster.WirePortResolver());
  cluster.set_transport(&transport);

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 3;
  opts.ops_per_client = 70;
  opts.keys_per_client = 12;
  opts.persist_every = 0;
  opts.durable_every = 4;  // replicate-acked writes are the survival floor
  opts.durability_timeout_ms = 500;
  harness::TortureDriver driver(&cluster, "default", opts);
  driver.NoteCrash();
  driver.NoteFailover();

  std::thread failer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(cluster.CrashNode(1).ok());
    ASSERT_TRUE(cluster.Failover(1).ok());
  });
  driver.Run();
  failer.join();

  ASSERT_TRUE(cluster.RecoverNode(1).ok());
  EXPECT_NE(cluster.wire_port(1), 0);  // the listener came back with it
  driver.Settle();

  // The node is a full member again: the recovery rebalance gave it
  // actives, and they are being served over its fresh listener.
  auto m = cluster.map("default");
  ASSERT_NE(m, nullptr);
  EXPECT_GT(m->CountActive(1), 0u);
  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
  EXPECT_GT(transport.round_trips(), 0u);
  cluster.set_transport(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureWireTest,
                         ::testing::Values(1, 20260808),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace couchkv
