// Lockdep (common/lockdep.h) behavioral suite. Meaningful only under
// -DCOUCHKV_LOCKDEP=ON — in normal builds every case GTEST_SKIPs, proving
// the hooks really compile out rather than silently half-working.
//
// The detector is process-global state, so each case uses its own uniquely
// named lock classes, and the fatal cases run the WHOLE poisoned sequence
// inside EXPECT_DEATH: the child process inherits the parent's graph but
// its new edges die with it, leaving the parent's graph clean for later
// cases.
#include "common/lockdep.h"

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/synchronization.h"

namespace couchkv {
namespace {

#define SKIP_UNLESS_LOCKDEP()                                        \
  do {                                                               \
    if (!lockdep::kEnabled) {                                        \
      GTEST_SKIP() << "built without COUCHKV_LOCKDEP; hooks are "    \
                      "no-ops";                                      \
    }                                                                \
  } while (0)

// A->B then B->A must abort with the inversion report, even though the
// deadly interleaving never executes (single thread, no second waiter).
TEST(LockdepDeathTest, AbbaInversionAborts) {
  SKIP_UNLESS_LOCKDEP();
  EXPECT_DEATH(
      {
        Mutex a{"lockdep_test.abba_a"};
        Mutex b{"lockdep_test.abba_b"};
        {
          LockGuard la(a);
          LockGuard lb(b);  // edge abba_a -> abba_b
        }
        LockGuard lb(b);
        LockGuard la(a);  // edge abba_b -> abba_a closes the cycle
      },
      "lock-order inversion");
}

// The report must carry BOTH sides: the existing order and the new edge,
// each with an acquisition stack.
TEST(LockdepDeathTest, InversionReportNamesBothEdges) {
  SKIP_UNLESS_LOCKDEP();
  EXPECT_DEATH(
      {
        Mutex a{"lockdep_test.rpt_a"};
        Mutex b{"lockdep_test.rpt_b"};
        {
          LockGuard la(a);
          LockGuard lb(b);
        }
        LockGuard lb(b);
        LockGuard la(a);
      },
      "existing order: \"lockdep_test\\.rpt_a\" -> \"lockdep_test\\.rpt_b\""
      "(.|\n)*new edge: +\"lockdep_test\\.rpt_b\" -> "
      "\"lockdep_test\\.rpt_a\"");
}

// Consistent A-then-B ordering from many threads is NOT an inversion: the
// suite reaching the end of this test (no abort) is the assertion.
TEST(LockdepTest, ConsistentOrderingNoFalsePositive) {
  SKIP_UNLESS_LOCKDEP();
  Mutex a{"lockdep_test.consistent_a"};
  Mutex b{"lockdep_test.consistent_b"};
  const uint64_t before = lockdep::EdgeCount();
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        LockGuard la(a);
        LockGuard lb(b);
      }
    });
  }
  for (auto& th : threads) th.join();
  // One class-level edge no matter how many acquisitions or threads.
  EXPECT_EQ(lockdep::EdgeCount(), before + 1);
}

// Waiting on a condvar while holding ANOTHER lock is reported (the held
// lock blocks for an unbounded time), with counter + last-report text.
TEST(LockdepTest, CondVarWaitWhileHoldingAnotherLockReports) {
  SKIP_UNLESS_LOCKDEP();
  Mutex held{"lockdep_test.cv_held"};
  Mutex waited{"lockdep_test.cv_waited"};
  CondVar cv;
  const uint64_t before = lockdep::CondVarHoldReports();
  {
    LockGuard outer(held);
    UniqueLock inner(waited);
    (void)cv.WaitFor(inner, std::chrono::milliseconds(1));
  }
  EXPECT_EQ(lockdep::CondVarHoldReports(), before + 1);
  EXPECT_NE(lockdep::LastReport().find("lockdep_test.cv_held"),
            std::string::npos)
      << "report should name the held lock: " << lockdep::LastReport();
}

// Waiting while holding only the waited lock is the normal pattern: silent.
TEST(LockdepTest, CondVarWaitHoldingOnlyWaitedLockIsSilent) {
  SKIP_UNLESS_LOCKDEP();
  Mutex waited{"lockdep_test.cv_only"};
  CondVar cv;
  const uint64_t before = lockdep::CondVarHoldReports();
  {
    UniqueLock inner(waited);
    (void)cv.WaitFor(inner, std::chrono::milliseconds(1));
  }
  EXPECT_EQ(lockdep::CondVarHoldReports(), before);
}

// A blocking call under a kHotPath lock class is reported; the same call
// with no hot lock held is silent.
TEST(LockdepTest, BlockingCallUnderHotPathLockReports) {
  SKIP_UNLESS_LOCKDEP();
  Mutex hot{"lockdep_test.hot", lockdep::kHotPath};
  const uint64_t before = lockdep::BlockingWhileHotReports();
  { lockdep::ScopedBlockingCall ok("lockdep_test-io-unlocked"); }
  EXPECT_EQ(lockdep::BlockingWhileHotReports(), before);
  {
    LockGuard lock(hot);
    lockdep::ScopedBlockingCall bad("lockdep_test-io-under-hot");
  }
  EXPECT_EQ(lockdep::BlockingWhileHotReports(), before + 1);
  EXPECT_NE(lockdep::LastReport().find("lockdep_test.hot"), std::string::npos)
      << "report should name the hot class: " << lockdep::LastReport();
}

// A non-hot lock held across a blocking call is allowed (cold paths may
// legitimately wait on disk).
TEST(LockdepTest, BlockingCallUnderColdLockIsSilent) {
  SKIP_UNLESS_LOCKDEP();
  Mutex cold{"lockdep_test.cold"};
  const uint64_t before = lockdep::BlockingWhileHotReports();
  {
    LockGuard lock(cold);
    lockdep::ScopedBlockingCall ok("lockdep_test-io-under-cold");
  }
  EXPECT_EQ(lockdep::BlockingWhileHotReports(), before);
}

// TryLock cannot block, so it adds no incoming edge — but the lock joins
// the held stack and seeds OUTGOING edges for later acquisitions.
TEST(LockdepTest, TryLockAddsNoIncomingEdgeButSeedsOutgoing) {
  SKIP_UNLESS_LOCKDEP();
  Mutex a{"lockdep_test.try_a"};
  Mutex b{"lockdep_test.try_b"};
  Mutex c{"lockdep_test.try_c"};
  const uint64_t before = lockdep::EdgeCount();
  LockGuard la(a);
  ASSERT_TRUE(b.TryLock());
  EXPECT_EQ(lockdep::EdgeCount(), before) << "trylock must not add a->b";
  {
    LockGuard lc(c);  // blocks: both a->c and b->c are recorded
  }
  EXPECT_EQ(lockdep::EdgeCount(), before + 2);
  b.Unlock();
}

// Two locks of the same (non-nestable) class at once is a potential
// self-deadlock: another thread doing the same in the opposite instance
// order would deadlock, and instance-level ordering is not tracked.
TEST(LockdepDeathTest, SameClassNestingAborts) {
  SKIP_UNLESS_LOCKDEP();
  EXPECT_DEATH(
      {
        Mutex m1{"lockdep_test.selfnest"};
        Mutex m2{"lockdep_test.selfnest"};
        LockGuard l1(m1);
        LockGuard l2(m2);
      },
      "same-class nested acquisition");
}

// kNestable opts a class out of the same-class rule.
TEST(LockdepTest, NestableClassAllowsSameClassNesting) {
  SKIP_UNLESS_LOCKDEP();
  Mutex m1{"lockdep_test.nestable", lockdep::kNestable};
  Mutex m2{"lockdep_test.nestable", lockdep::kNestable};
  LockGuard l1(m1);
  LockGuard l2(m2);
  SUCCEED();
}

// Re-acquiring the very same instance is a guaranteed self-deadlock (the
// one case that needs no second thread), reported distinctly.
TEST(LockdepDeathTest, RecursiveSameInstanceAborts) {
  SKIP_UNLESS_LOCKDEP();
  EXPECT_DEATH(
      {
        Mutex m{"lockdep_test.recursive"};
        m.Lock();
        m.Lock();
      },
      "recursive acquisition of the same instance");
}

// The JSON dump feeding scripts/analysis/lock_order.py must list the
// classes and the observed class-level edges.
TEST(LockdepTest, DumpGraphJsonContainsClassesAndEdges) {
  SKIP_UNLESS_LOCKDEP();
  Mutex a{"lockdep_test.dump_a"};
  Mutex b{"lockdep_test.dump_b"};
  {
    LockGuard la(a);
    LockGuard lb(b);
  }
  const std::string json = lockdep::DumpGraphJson();
  EXPECT_NE(json.find("\"lockdep_test.dump_a\""), std::string::npos);
  EXPECT_NE(json.find("\"lockdep_test.dump_b\""), std::string::npos);
  EXPECT_NE(json.find("{\"from\": \"lockdep_test.dump_a\", "
                      "\"to\": \"lockdep_test.dump_b\"}"),
            std::string::npos)
      << json;
}

// SharedMutex readers participate in ordering like writers: a reader-side
// inversion is still a potential deadlock (writer starvation chains).
TEST(LockdepDeathTest, SharedAcquisitionInversionAborts) {
  SKIP_UNLESS_LOCKDEP();
  EXPECT_DEATH(
      {
        SharedMutex a{"lockdep_test.shared_a"};
        SharedMutex b{"lockdep_test.shared_b"};
        {
          ReaderLockGuard la(a);
          ReaderLockGuard lb(b);
        }
        ReaderLockGuard lb(b);
        ReaderLockGuard la(a);
      },
      "lock-order inversion");
}

// In a non-lockdep build the detector must report exactly nothing — the
// inverse of SKIP_UNLESS_LOCKDEP: this case runs ONLY when lockdep is off.
TEST(LockdepTest, DisabledBuildHooksAreInert) {
  if (lockdep::kEnabled) {
    GTEST_SKIP() << "covered by the cases above when lockdep is on";
  }
  Mutex a{"lockdep_test.off_a"};
  Mutex b{"lockdep_test.off_b"};
  {
    LockGuard la(a);
    LockGuard lb(b);
  }
  EXPECT_EQ(lockdep::EdgeCount(), 0u);
  EXPECT_EQ(lockdep::CondVarHoldReports(), 0u);
  EXPECT_EQ(lockdep::BlockingWhileHotReports(), 0u);
  EXPECT_EQ(lockdep::LastReport(), "");
}

}  // namespace
}  // namespace couchkv
