// Tests for the view engine: map/reduce functions, local index maintenance,
// stale= consistency options, scatter/gather queries, rebalance filtering.
#include <gtest/gtest.h>

#include "client/smart_client.h"
#include "views/view_engine.h"

namespace couchkv::views {
namespace {

using json::Value;

// --- Map / Reduce functions ---

TEST(MapFnTest, EmitsKeyAndValue) {
  MapFn map;
  map.filter_exists_path = "name";
  map.key_paths = {"name"};
  map.value_path = "email";
  auto doc = json::Parse(
      R"({"name":"Dipti","email":"dipti@couchbase.com"})").value();
  auto row = RunMap(map, "borkar123", doc);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->key.AsString(), "Dipti");
  EXPECT_EQ(row->value.AsString(), "dipti@couchbase.com");
  EXPECT_EQ(row->doc_id, "borkar123");
}

TEST(MapFnTest, FilterSkipsDocsWithoutField) {
  // Mirrors the paper's `if (doc.name) emit(...)` guard.
  MapFn map;
  map.filter_exists_path = "name";
  map.key_paths = {"name"};
  auto doc = json::Parse(R"({"email":"x@y.com"})").value();
  EXPECT_FALSE(RunMap(map, "k", doc).has_value());
}

TEST(MapFnTest, EqualityFilter) {
  MapFn map;
  map.filter_eq_path = "doc_type";
  map.filter_eq_value = Value::Str("order");
  map.key_paths = {"total"};
  EXPECT_TRUE(RunMap(map, "k",
                     json::Parse(R"({"doc_type":"order","total":9})").value())
                  .has_value());
  EXPECT_FALSE(
      RunMap(map, "k",
             json::Parse(R"({"doc_type":"user","total":9})").value())
          .has_value());
}

TEST(MapFnTest, CompositeKey) {
  MapFn map;
  map.key_paths = {"last", "first"};
  auto doc = json::Parse(R"({"last":"Borkar","first":"Dipti"})").value();
  auto row = RunMap(map, "k", doc);
  ASSERT_TRUE(row.has_value());
  ASSERT_TRUE(row->key.is_array());
  EXPECT_EQ(row->key.At(0).AsString(), "Borkar");
  EXPECT_EQ(row->key.At(1).AsString(), "Dipti");
}

TEST(ReduceTest, Count) {
  std::vector<Value> vals = {Value::Int(1), Value::Str("x"), Value::Null()};
  EXPECT_EQ(RunReduce(ReduceFn::kCount, vals).AsInt(), 3);
}

TEST(ReduceTest, SumIgnoresNonNumbers) {
  std::vector<Value> vals = {Value::Int(2), Value::Str("x"), Value::Int(5)};
  EXPECT_DOUBLE_EQ(RunReduce(ReduceFn::kSum, vals).AsNumber(), 7.0);
}

TEST(ReduceTest, Stats) {
  std::vector<Value> vals = {Value::Int(2), Value::Int(4), Value::Int(6)};
  Value stats = RunReduce(ReduceFn::kStats, vals);
  EXPECT_DOUBLE_EQ(stats.Field("sum").AsNumber(), 12.0);
  EXPECT_EQ(stats.Field("count").AsInt(), 3);
  EXPECT_DOUBLE_EQ(stats.Field("min").AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Field("max").AsNumber(), 6.0);
  EXPECT_DOUBLE_EQ(stats.Field("sumsqr").AsNumber(), 56.0);
}

// --- ViewIndex ---

kv::Mutation Mut(const std::string& key, const std::string& json_doc,
                 uint64_t seqno, uint16_t vb = 0, bool deleted = false) {
  kv::Mutation m;
  m.vbucket = vb;
  m.doc.key = key;
  m.doc.value = json_doc;
  m.doc.meta.seqno = seqno;
  m.doc.meta.deleted = deleted;
  return m;
}

class ViewIndexTest : public ::testing::Test {
 protected:
  ViewIndexTest() : index_(MakeDef()) {
    index_.SetVBucketActive(0, true);
    index_.SetVBucketActive(1, true);
  }
  static ViewDefinition MakeDef() {
    ViewDefinition def;
    def.name = "by_age";
    def.map.key_paths = {"age"};
    def.map.value_path = "name";
    return def;
  }
  ViewIndex index_;
};

TEST_F(ViewIndexTest, InsertUpdateDelete) {
  index_.ApplyMutation(Mut("u1", R"({"age":30,"name":"A"})", 1));
  EXPECT_EQ(index_.row_count(), 1u);
  // Update changes the key: old row removed.
  index_.ApplyMutation(Mut("u1", R"({"age":31,"name":"A"})", 2));
  EXPECT_EQ(index_.row_count(), 1u);
  ViewQueryOptions opts;
  opts.key = Value::Int(31);
  EXPECT_EQ(index_.Scan(opts).size(), 1u);
  opts.key = Value::Int(30);
  EXPECT_EQ(index_.Scan(opts).size(), 0u);
  // Deletion removes the row.
  index_.ApplyMutation(Mut("u1", "", 3, 0, /*deleted=*/true));
  EXPECT_EQ(index_.row_count(), 0u);
}

TEST_F(ViewIndexTest, RangeScanInCollationOrder) {
  index_.ApplyMutation(Mut("u1", R"({"age":25,"name":"A"})", 1));
  index_.ApplyMutation(Mut("u2", R"({"age":35,"name":"B"})", 2));
  index_.ApplyMutation(Mut("u3", R"({"age":30,"name":"C"})", 3));
  ViewQueryOptions opts;
  opts.start_key = Value::Int(26);
  opts.end_key = Value::Int(40);
  auto rows = index_.Scan(opts);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].key.AsInt(), 30);
  EXPECT_EQ(rows[1].key.AsInt(), 35);
}

TEST_F(ViewIndexTest, DeactivatedVBucketHiddenFromScans) {
  index_.ApplyMutation(Mut("u1", R"({"age":25})", 1, /*vb=*/0));
  index_.ApplyMutation(Mut("u2", R"({"age":26})", 1, /*vb=*/1));
  ViewQueryOptions all;
  EXPECT_EQ(index_.Scan(all).size(), 2u);
  // Rebalance moved vb 1 away: its rows must vanish from results while
  // staying in the tree (paper: vBucket info is stored in the view B-tree).
  index_.SetVBucketActive(1, false);
  auto rows = index_.Scan(all);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].doc_id, "u1");
}

TEST_F(ViewIndexTest, ProcessedSeqnoTracksPerVBucket) {
  index_.ApplyMutation(Mut("a", R"({"age":1})", 7, 0));
  index_.ApplyMutation(Mut("b", R"({"age":2})", 9, 1));
  EXPECT_EQ(index_.processed_seqno(0), 7u);
  EXPECT_EQ(index_.processed_seqno(1), 9u);
}

TEST_F(ViewIndexTest, NonJsonDocumentsIgnored) {
  index_.ApplyMutation(Mut("bin", "not-json!", 1));
  EXPECT_EQ(index_.row_count(), 0u);
  EXPECT_EQ(index_.processed_seqno(0), 1u);  // still acknowledged
}

// --- ViewEngine end-to-end ---

class ViewEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) cluster_.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    engine_ = std::make_shared<ViewEngine>(&cluster_);
    engine_->Attach();
    client_ = std::make_unique<client::SmartClient>(&cluster_, "default");
  }

  ViewDefinition ProfileView() {
    ViewDefinition def;
    def.name = "profile";
    def.map.filter_exists_path = "name";
    def.map.key_paths = {"name"};
    def.map.value_path = "email";
    return def;
  }

  cluster::Cluster cluster_;
  std::shared_ptr<ViewEngine> engine_;
  std::unique_ptr<client::SmartClient> client_;
};

TEST_F(ViewEngineTest, PaperExampleQueryByKey) {
  // The paper's §3.1.2 example: emit(doc.name, doc.email), query key="Dipti".
  ASSERT_TRUE(client_
                  ->Upsert("borkar123",
                           R"({"name":"Dipti","email":"dipti@couchbase.com"})")
                  .ok());
  ASSERT_TRUE(
      client_->Upsert("mayuram1", R"({"name":"Ravi","email":"r@c.com"})")
          .ok());
  ASSERT_TRUE(client_->Upsert("noname", R"({"email":"anon@c.com"})").ok());
  ASSERT_TRUE(engine_->CreateView("default", ProfileView()).ok());

  ViewQueryOptions opts;
  opts.key = Value::Str("Dipti");
  auto result = engine_->Query("default", "profile", opts, Staleness::kFalse);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].value.AsString(), "dipti@couchbase.com");
  EXPECT_EQ(result->rows[0].doc_id, "borkar123");
}

TEST_F(ViewEngineTest, StaleOkMayMissRecentWrites) {
  ASSERT_TRUE(engine_->CreateView("default", ProfileView()).ok());
  cluster_.Quiesce();
  // Write without giving the indexer a chance to run, then query stale=ok.
  ASSERT_TRUE(
      client_->Upsert("u1", R"({"name":"New","email":"n@c.com"})").ok());
  ViewQueryOptions opts;
  opts.key = Value::Str("New");
  // stale=ok is allowed to miss it; stale=false must see it.
  auto strict = engine_->Query("default", "profile", opts, Staleness::kFalse);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->rows.size(), 1u);
}

TEST_F(ViewEngineTest, ScatterGatherMergesAcrossNodes) {
  ASSERT_TRUE(engine_->CreateView("default", ProfileView()).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("user" + std::to_string(i),
                             R"({"name":"n)" + std::to_string(i) +
                                 R"(","email":"e"})")
                    .ok());
  }
  ViewQueryOptions opts;
  auto result = engine_->Query("default", "profile", opts, Staleness::kFalse);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 200u);
  // Rows arrive in global collation order despite living on 3 nodes.
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_LE(Value::Compare(result->rows[i - 1].key, result->rows[i].key), 0);
  }
}

TEST_F(ViewEngineTest, ReduceCountAndGroup) {
  ViewDefinition def;
  def.name = "by_city";
  def.map.key_paths = {"city"};
  def.map.value_path = "age";
  def.reduce = ReduceFn::kCount;
  ASSERT_TRUE(engine_->CreateView("default", def).ok());
  ASSERT_TRUE(client_->Upsert("a", R"({"city":"SF","age":30})").ok());
  ASSERT_TRUE(client_->Upsert("b", R"({"city":"SF","age":40})").ok());
  ASSERT_TRUE(client_->Upsert("c", R"({"city":"NY","age":50})").ok());

  ViewQueryOptions opts;
  auto total = engine_->Query("default", "by_city", opts, Staleness::kFalse);
  ASSERT_TRUE(total.ok());
  ASSERT_EQ(total->rows.size(), 1u);
  EXPECT_EQ(total->rows[0].value.AsInt(), 3);

  opts.group = true;
  auto grouped = engine_->Query("default", "by_city", opts, Staleness::kFalse);
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped->rows.size(), 2u);
  EXPECT_EQ(grouped->rows[0].key.AsString(), "NY");
  EXPECT_EQ(grouped->rows[0].value.AsInt(), 1);
  EXPECT_EQ(grouped->rows[1].key.AsString(), "SF");
  EXPECT_EQ(grouped->rows[1].value.AsInt(), 2);
}

TEST_F(ViewEngineTest, LimitSkipDescending) {
  ViewDefinition def;
  def.name = "by_age";
  def.map.key_paths = {"age"};
  ASSERT_TRUE(engine_->CreateView("default", def).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("u" + std::to_string(i),
                             R"({"age":)" + std::to_string(20 + i) + "}")
                    .ok());
  }
  ViewQueryOptions opts;
  opts.descending = true;
  opts.limit = 3;
  opts.skip = 1;
  auto result = engine_->Query("default", "by_age", opts, Staleness::kFalse);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0].key.AsInt(), 28);
  EXPECT_EQ(result->rows[2].key.AsInt(), 26);
}

TEST_F(ViewEngineTest, ViewSurvivesRebalance) {
  ASSERT_TRUE(engine_->CreateView("default", ProfileView()).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("u" + std::to_string(i),
                             R"({"name":"x)" + std::to_string(i) +
                                 R"(","email":"e"})")
                    .ok());
  }
  cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  ViewQueryOptions opts;
  auto result = engine_->Query("default", "profile", opts, Staleness::kFalse);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 100u);
}

TEST_F(ViewEngineTest, DropViewRemovesIt) {
  ASSERT_TRUE(engine_->CreateView("default", ProfileView()).ok());
  ASSERT_TRUE(engine_->DropView("default", "profile").ok());
  ViewQueryOptions opts;
  EXPECT_FALSE(engine_->Query("default", "profile", opts).ok());
}

TEST_F(ViewEngineTest, MultiKeyLookup) {
  ASSERT_TRUE(engine_->CreateView("default", ProfileView()).ok());
  ASSERT_TRUE(client_->Upsert("a", R"({"name":"A","email":"a@"})").ok());
  ASSERT_TRUE(client_->Upsert("b", R"({"name":"B","email":"b@"})").ok());
  ASSERT_TRUE(client_->Upsert("c", R"({"name":"C","email":"c@"})").ok());
  ViewQueryOptions opts;
  opts.keys = {Value::Str("A"), Value::Str("C")};
  auto result = engine_->Query("default", "profile", opts, Staleness::kFalse);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

}  // namespace
}  // namespace couchkv::views
