// Tests for the GSI service: key projection, partitions, partial and array
// indexes, scan consistency, memory-optimized mode, topology changes.
#include <gtest/gtest.h>

#include "client/smart_client.h"
#include "gsi/index_service.h"

namespace couchkv::gsi {
namespace {

using json::Value;

// --- ProjectKeys (the Projector's evaluation) ---

TEST(ProjectKeysTest, SimpleKey) {
  IndexDefinition def;
  def.key_paths = {"email"};
  auto doc = json::Parse(R"({"email":"a@b.com"})").value();
  auto keys = ProjectKeys(def, "d1", &doc);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].AsString(), "a@b.com");
}

TEST(ProjectKeysTest, MissingLeadingKeySkipsDoc) {
  IndexDefinition def;
  def.key_paths = {"email"};
  auto doc = json::Parse(R"({"name":"x"})").value();
  EXPECT_TRUE(ProjectKeys(def, "d1", &doc).empty());
}

TEST(ProjectKeysTest, DeletionDropsEntries) {
  IndexDefinition def;
  def.key_paths = {"email"};
  EXPECT_TRUE(ProjectKeys(def, "d1", nullptr).empty());
}

TEST(ProjectKeysTest, CompositeKey) {
  IndexDefinition def;
  def.key_paths = {"last", "first"};
  auto doc = json::Parse(R"({"last":"B","first":"D"})").value();
  auto keys = ProjectKeys(def, "d1", &doc);
  ASSERT_EQ(keys.size(), 1u);
  ASSERT_TRUE(keys[0].is_array());
  EXPECT_EQ(keys[0].At(0).AsString(), "B");
  EXPECT_EQ(keys[0].At(1).AsString(), "D");
}

TEST(ProjectKeysTest, PartialIndexFilter) {
  IndexDefinition def;
  def.key_paths = {"age"};
  def.where_fn = [](const Value& doc) {
    return doc.Field("age").is_number() && doc.Field("age").AsNumber() > 21;
  };
  auto young = json::Parse(R"({"age":18})").value();
  auto adult = json::Parse(R"({"age":30})").value();
  EXPECT_TRUE(ProjectKeys(def, "d", &young).empty());
  EXPECT_EQ(ProjectKeys(def, "d", &adult).size(), 1u);
}

TEST(ProjectKeysTest, ArrayIndexOneEntryPerElement) {
  IndexDefinition def;
  def.key_paths = {"categories"};
  def.array_index = true;
  auto doc = json::Parse(R"({"categories":["a","b","c"]})").value();
  auto keys = ProjectKeys(def, "d", &doc);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[1].AsString(), "b");
}

TEST(ProjectKeysTest, PrimaryIndexUsesDocId) {
  IndexDefinition def;
  def.is_primary = true;
  auto doc = json::Parse("{}").value();
  auto keys = ProjectKeys(def, "the-id", &doc);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].AsString(), "the-id");
}

// --- IndexPartition ---

KeyVersion KV(const std::string& doc_id, std::vector<Value> keys,
              uint64_t seqno = 1, uint16_t vb = 0) {
  KeyVersion kv;
  kv.index_name = "i";
  kv.doc_id = doc_id;
  kv.keys = std::move(keys);
  kv.seqno = seqno;
  kv.vbucket = vb;
  return kv;
}

TEST(IndexPartitionTest, ApplyAndScan) {
  IndexDefinition def;
  def.key_paths = {"x"};
  IndexPartition p(def, 0, nullptr);
  p.Apply(KV("d1", {Value::Int(5)}, 1));
  p.Apply(KV("d2", {Value::Int(10)}, 2));
  p.Apply(KV("d3", {Value::Int(15)}, 3));
  ScanRange range;
  range.lo = Value::Int(6);
  auto out = p.Scan(range, SIZE_MAX);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc_id, "d2");
  EXPECT_EQ(out[1].doc_id, "d3");
}

TEST(IndexPartitionTest, UpdateReplacesOldKey) {
  IndexDefinition def;
  def.key_paths = {"x"};
  IndexPartition p(def, 0, nullptr);
  p.Apply(KV("d1", {Value::Int(5)}, 1));
  p.Apply(KV("d1", {Value::Int(50)}, 2));
  EXPECT_EQ(p.num_entries(), 1u);
  auto out = p.Scan(ScanRange::All(), SIZE_MAX);
  EXPECT_EQ(out[0].key.AsInt(), 50);
}

TEST(IndexPartitionTest, EmptyKeysActAsDelete) {
  IndexDefinition def;
  def.key_paths = {"x"};
  IndexPartition p(def, 0, nullptr);
  p.Apply(KV("d1", {Value::Int(5)}, 1));
  p.Apply(KV("d1", {}, 2));
  EXPECT_EQ(p.num_entries(), 0u);
}

TEST(IndexPartitionTest, ExclusiveBounds) {
  IndexDefinition def;
  def.key_paths = {"x"};
  IndexPartition p(def, 0, nullptr);
  for (int i = 1; i <= 5; ++i) {
    p.Apply(KV("d" + std::to_string(i), {Value::Int(i)},
               static_cast<uint64_t>(i)));
  }
  ScanRange range;
  range.lo = Value::Int(2);
  range.lo_inclusive = false;
  range.hi = Value::Int(4);
  range.hi_inclusive = false;
  auto out = p.Scan(range, SIZE_MAX);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key.AsInt(), 3);
}

TEST(IndexPartitionTest, PartitionedOwnership) {
  IndexDefinition def;
  def.key_paths = {"x"};
  def.num_partitions = 4;
  std::vector<std::unique_ptr<IndexPartition>> parts;
  for (uint32_t i = 0; i < 4; ++i) {
    parts.push_back(std::make_unique<IndexPartition>(def, i, nullptr));
  }
  // Broadcast 100 key versions; each lands in exactly one partition.
  for (int i = 0; i < 100; ++i) {
    auto kv = KV("d" + std::to_string(i), {Value::Int(i)},
                 static_cast<uint64_t>(i + 1));
    for (auto& p : parts) p->Apply(kv);
  }
  size_t total = 0;
  for (auto& p : parts) {
    EXPECT_LT(p->num_entries(), 100u);  // no partition holds everything
    total += p->num_entries();
  }
  EXPECT_EQ(total, 100u);
}

TEST(IndexPartitionTest, PartitionKeyChangeMovesEntry) {
  // The §4.3.4 scenario: update changes the key so the entry must move
  // from one partition (delete) to another (insert).
  IndexDefinition def;
  def.key_paths = {"x"};
  def.num_partitions = 2;
  IndexPartition p0(def, 0, nullptr), p1(def, 1, nullptr);
  auto apply_both = [&](const KeyVersion& kv) {
    p0.Apply(kv);
    p1.Apply(kv);
  };
  // Find two values that hash to different partitions.
  Value a, b;
  bool found = false;
  for (int i = 0; i < 100 && !found; ++i) {
    for (int j = i + 1; j < 100; ++j) {
      Value vi = Value::Int(i), vj = Value::Int(j);
      if (p0.OwnsKey(vi) && p1.OwnsKey(vj)) {
        a = vi;
        b = vj;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);
  apply_both(KV("doc", {a}, 1));
  EXPECT_EQ(p0.num_entries() + p1.num_entries(), 1u);
  EXPECT_EQ(p0.num_entries(), 1u);
  apply_both(KV("doc", {b}, 2));
  EXPECT_EQ(p0.num_entries(), 0u);  // deleted here
  EXPECT_EQ(p1.num_entries(), 1u);  // inserted there
}

// --- IndexService end-to-end ---

class IndexServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) cluster_.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    service_ = std::make_shared<IndexService>(&cluster_);
    service_->Attach();
    client_ = std::make_unique<client::SmartClient>(&cluster_, "default");
  }

  IndexDefinition AgeIndex() {
    IndexDefinition def;
    def.name = "by_age";
    def.bucket = "default";
    def.key_paths = {"age"};
    return def;
  }

  cluster::Cluster cluster_;
  std::shared_ptr<IndexService> service_;
  std::unique_ptr<client::SmartClient> client_;
};

TEST_F(IndexServiceTest, BuildsFromExistingData) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("u" + std::to_string(i),
                             R"({"age":)" + std::to_string(20 + i % 30) + "}")
                    .ok());
  }
  ASSERT_TRUE(service_->CreateIndex(AgeIndex()).ok());
  auto entries = service_->Scan("default", "by_age", ScanRange::All(),
                                SIZE_MAX, ScanConsistency::kRequestPlus);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  EXPECT_EQ(entries->size(), 50u);
}

TEST_F(IndexServiceTest, RequestPlusSeesOwnWrite) {
  ASSERT_TRUE(service_->CreateIndex(AgeIndex()).ok());
  ASSERT_TRUE(client_->Upsert("u-new", R"({"age":99})").ok());
  // Read-your-own-write (paper §3.2.3: request_plus).
  auto entries =
      service_->Scan("default", "by_age", ScanRange::Point(Value::Int(99)),
                     SIZE_MAX, ScanConsistency::kRequestPlus);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].doc_id, "u-new");
}

TEST_F(IndexServiceTest, RangeScanOrdered) {
  ASSERT_TRUE(service_->CreateIndex(AgeIndex()).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("u" + std::to_string(i),
                             R"({"age":)" + std::to_string(i) + "}")
                    .ok());
  }
  ScanRange range;
  range.lo = Value::Int(10);
  range.hi = Value::Int(19);
  auto entries = service_->Scan("default", "by_age", range, SIZE_MAX,
                                ScanConsistency::kRequestPlus);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 10u);
  for (size_t i = 1; i < entries->size(); ++i) {
    EXPECT_LE(Value::Compare((*entries)[i - 1].key, (*entries)[i].key), 0);
  }
}

TEST_F(IndexServiceTest, LimitRespected) {
  ASSERT_TRUE(service_->CreateIndex(AgeIndex()).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("u" + std::to_string(i),
                             R"({"age":)" + std::to_string(i) + "}")
                    .ok());
  }
  auto entries = service_->Scan("default", "by_age", ScanRange::All(), 5,
                                ScanConsistency::kRequestPlus);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 5u);
}

TEST_F(IndexServiceTest, PartitionedIndexScatterGather) {
  IndexDefinition def = AgeIndex();
  def.name = "by_age_p";
  def.num_partitions = 4;
  ASSERT_TRUE(service_->CreateIndex(def).ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("u" + std::to_string(i),
                             R"({"age":)" + std::to_string(i) + "}")
                    .ok());
  }
  auto entries = service_->Scan("default", "by_age_p", ScanRange::All(),
                                SIZE_MAX, ScanConsistency::kRequestPlus);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 40u);
  for (size_t i = 1; i < entries->size(); ++i) {
    EXPECT_LE(Value::Compare((*entries)[i - 1].key, (*entries)[i].key), 0);
  }
  EXPECT_EQ(service_->Stats("default", "by_age_p").num_partitions, 4u);
}

TEST_F(IndexServiceTest, MemoryOptimizedWritesNoDisk) {
  IndexDefinition std_def = AgeIndex();
  IndexDefinition mem_def = AgeIndex();
  mem_def.name = "by_age_mem";
  mem_def.mode = IndexStorageMode::kMemoryOptimized;
  ASSERT_TRUE(service_->CreateIndex(std_def).ok());
  ASSERT_TRUE(service_->CreateIndex(mem_def).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("u" + std::to_string(i),
                             R"({"age":)" + std::to_string(i) + "}")
                    .ok());
  }
  ASSERT_TRUE(service_->WaitUntilCaughtUp("default", "by_age").ok());
  ASSERT_TRUE(service_->WaitUntilCaughtUp("default", "by_age_mem").ok());
  EXPECT_GT(service_->Stats("default", "by_age").disk_bytes_written, 0u);
  EXPECT_EQ(service_->Stats("default", "by_age_mem").disk_bytes_written, 0u);
}

TEST_F(IndexServiceTest, DropIndexStopsMaintenance) {
  ASSERT_TRUE(service_->CreateIndex(AgeIndex()).ok());
  ASSERT_TRUE(service_->DropIndex("default", "by_age").ok());
  EXPECT_FALSE(service_
                   ->Scan("default", "by_age", ScanRange::All(), 10,
                          ScanConsistency::kNotBounded)
                   .ok());
  EXPECT_TRUE(service_->ListIndexes("default").empty());
}

TEST_F(IndexServiceTest, IndexSurvivesRebalance) {
  ASSERT_TRUE(service_->CreateIndex(AgeIndex()).ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("u" + std::to_string(i),
                             R"({"age":)" + std::to_string(i) + "}")
                    .ok());
  }
  cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  for (int i = 60; i < 80; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("u" + std::to_string(i),
                             R"({"age":)" + std::to_string(i) + "}")
                    .ok());
  }
  auto entries = service_->Scan("default", "by_age", ScanRange::All(),
                                SIZE_MAX, ScanConsistency::kRequestPlus);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  EXPECT_EQ(entries->size(), 80u);
}

TEST_F(IndexServiceTest, MdsRequiresIndexNode) {
  cluster::Cluster c;
  c.AddNode(cluster::kDataService);  // data only, no index service
  cluster::BucketConfig cfg;
  cfg.name = "b";
  cfg.num_replicas = 0;
  ASSERT_TRUE(c.CreateBucket(cfg).ok());
  auto svc = std::make_shared<IndexService>(&c);
  svc->Attach();
  IndexDefinition def;
  def.name = "i";
  def.bucket = "b";
  def.key_paths = {"x"};
  EXPECT_FALSE(svc->CreateIndex(def).ok());
}

}  // namespace
}  // namespace couchkv::gsi
