// Unit tests for the net::Transport layer: DirectTransport pass-through,
// FaultyTransport determinism / drop rates / partitions / fingerprints, and
// the two-leg semantics of net::Call (lost request = op never ran, lost
// reply = op ran but the caller can't know).
#include <gtest/gtest.h>

#include <vector>

#include "net/faulty_transport.h"
#include "net/transport.h"

namespace couchkv::net {
namespace {

const Endpoint kC = Endpoint::Client(7);
const Endpoint kN0 = Endpoint::Node(0);
const Endpoint kN1 = Endpoint::Node(1);

TEST(DirectTransportTest, DeliversEverything) {
  DirectTransport t;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(t.Request(kC, kN0).ok());
    EXPECT_TRUE(t.Reply(kC, kN0).ok());
  }
}

TEST(FaultyTransportTest, PerfectByDefault) {
  FaultyTransport t(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(t.Request(kC, kN0).ok());
  EXPECT_EQ(t.stats().delivered, 100u);
  EXPECT_EQ(t.stats().dropped, 0u);
}

TEST(FaultyTransportTest, DropRateIsRoughlyHonored) {
  FaultyTransport t(42);
  LinkFaults f;
  f.drop = 0.3;
  t.SetDefaultFaults(f);
  int dropped = 0;
  for (int i = 0; i < 2000; ++i) {
    if (!t.Request(kC, kN0).ok()) ++dropped;
  }
  // 2000 draws at p=0.3: expect ~600, allow a wide band.
  EXPECT_GT(dropped, 450);
  EXPECT_LT(dropped, 750);
}

TEST(FaultyTransportTest, DropsSurfaceAsTempFail) {
  FaultyTransport t(7);
  LinkFaults f;
  f.drop = 1.0;
  t.SetDefaultFaults(f);
  Status s = t.Request(kC, kN0);
  ASSERT_FALSE(s.ok());
  // Retry layers must treat link faults as transient, never as Timeout
  // (durability timeouts are surfaced un-retried).
  EXPECT_TRUE(s.IsTempFail());
}

TEST(FaultyTransportTest, SameSeedSameSchedule) {
  // The fate of the k-th message on a link is a pure function of (seed, k).
  for (uint64_t seed : {1ULL, 99ULL, 0xdeadbeefULL}) {
    FaultyTransport a(seed), b(seed);
    LinkFaults f;
    f.drop = 0.5;
    a.SetDefaultFaults(f);
    b.SetDefaultFaults(f);
    for (int i = 0; i < 500; ++i) {
      EXPECT_EQ(a.Request(kC, kN0).ok(), b.Request(kC, kN0).ok());
      EXPECT_EQ(a.Request(kN0, kN1).ok(), b.Request(kN0, kN1).ok());
    }
    EXPECT_EQ(a.ScheduleFingerprint(), b.ScheduleFingerprint());
  }
}

TEST(FaultyTransportTest, DifferentSeedsDiverge) {
  FaultyTransport a(1), b(2);
  LinkFaults f;
  f.drop = 0.5;
  a.SetDefaultFaults(f);
  b.SetDefaultFaults(f);
  for (int i = 0; i < 200; ++i) {
    (void)a.Request(kC, kN0);
    (void)b.Request(kC, kN0);
  }
  EXPECT_NE(a.ScheduleFingerprint(), b.ScheduleFingerprint());
}

TEST(FaultyTransportTest, LinksHaveIndependentStreams) {
  // Interleaving traffic on link B must not perturb link A's decisions.
  FaultyTransport a(5), b(5);
  LinkFaults f;
  f.drop = 0.5;
  a.SetDefaultFaults(f);
  b.SetDefaultFaults(f);
  std::vector<bool> fates_a, fates_b;
  for (int i = 0; i < 300; ++i) fates_a.push_back(a.Request(kC, kN0).ok());
  for (int i = 0; i < 300; ++i) {
    (void)b.Request(kN0, kN1);  // extra traffic on an unrelated link
    fates_b.push_back(b.Request(kC, kN0).ok());
  }
  EXPECT_EQ(fates_a, fates_b);
}

TEST(FaultyTransportTest, BlockIsOneWay) {
  FaultyTransport t(1);
  t.Block(kN0, kN1);
  EXPECT_FALSE(t.Request(kN0, kN1).ok());
  EXPECT_TRUE(t.Request(kN1, kN0).ok());  // reverse direction unaffected
  t.Unblock(kN0, kN1);
  EXPECT_TRUE(t.Request(kN0, kN1).ok());
}

TEST(FaultyTransportTest, BlockedLinksConsumeNoRandomness) {
  // A block must not advance the link RNG, or healing a partition would
  // desynchronize the schedule relative to a run without the partition's
  // blocked traffic.
  FaultyTransport a(9), b(9);
  LinkFaults f;
  f.drop = 0.5;
  a.SetDefaultFaults(f);
  b.SetDefaultFaults(f);
  b.Block(kC, kN0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(b.Request(kC, kN0).ok());
  b.Unblock(kC, kN0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Request(kC, kN0).ok(), b.Request(kC, kN0).ok());
  }
}

TEST(FaultyTransportTest, PartitionPairBlocksBothWays) {
  FaultyTransport t(1);
  t.PartitionPair(kN0, kN1);
  EXPECT_FALSE(t.Request(kN0, kN1).ok());
  EXPECT_FALSE(t.Request(kN1, kN0).ok());
  EXPECT_TRUE(t.Request(kC, kN0).ok());  // other links unaffected
  t.HealAll();
  EXPECT_TRUE(t.Request(kN0, kN1).ok());
}

TEST(FaultyTransportTest, IsolateNodeCutsAllTraffic) {
  FaultyTransport t(1);
  t.IsolateNode(0);
  EXPECT_FALSE(t.Request(kC, kN0).ok());
  EXPECT_FALSE(t.Request(kN0, kN1).ok());
  EXPECT_FALSE(t.Reply(kC, kN0).ok());
  EXPECT_TRUE(t.Request(kC, kN1).ok());
  t.HealNode(0);
  EXPECT_TRUE(t.Request(kC, kN0).ok());
}

TEST(FaultyTransportTest, ReplyUsesReverseLink) {
  // Replies to calls made src -> dst travel the dst -> src link, so a
  // one-way block of dst -> src loses replies but not requests.
  FaultyTransport t(1);
  t.Block(kN0, kC);
  EXPECT_TRUE(t.Request(kC, kN0).ok());
  EXPECT_FALSE(t.Reply(kC, kN0).ok());
}

TEST(FaultyTransportTest, LatencyIsInjected) {
  FaultyTransport t(1);
  LinkFaults f;
  f.min_latency_us = 200;
  f.max_latency_us = 400;
  t.SetLinkFaults(kC, kN0, f);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(t.Request(kC, kN0).ok());
  EXPECT_GE(t.stats().latency_us_total, 5u * 200u);
  EXPECT_LE(t.stats().latency_us_total, 5u * 400u);
}

TEST(FaultyTransportTest, ExactLinkFaultsOverrideDefaults) {
  FaultyTransport t(1);
  LinkFaults everything;
  everything.drop = 1.0;
  t.SetDefaultFaults(everything);
  t.SetLinkFaults(kC, kN0, LinkFaults{});  // this link stays perfect
  EXPECT_TRUE(t.Request(kC, kN0).ok());
  EXPECT_FALSE(t.Request(kC, kN1).ok());
}

TEST(FaultyTransportTest, ClientFaultsApplyToClientLinksOnly) {
  FaultyTransport t(1);
  LinkFaults f;
  f.drop = 1.0;
  t.SetClientFaults(f);
  EXPECT_FALSE(t.Request(kC, kN0).ok());   // client -> node
  EXPECT_FALSE(t.Reply(kC, kN0).ok());     // node -> client
  EXPECT_TRUE(t.Request(kN0, kN1).ok());   // node -> node unaffected
}

TEST(FaultyTransportTest, ResetRestoresPerfectNetwork) {
  FaultyTransport t(1);
  LinkFaults f;
  f.drop = 1.0;
  t.SetDefaultFaults(f);
  t.IsolateNode(0);
  t.Reset();
  EXPECT_TRUE(t.Request(kC, kN0).ok());
  EXPECT_TRUE(t.Request(kN0, kN1).ok());
}

TEST(NetCallTest, LostRequestMeansOpNeverRan) {
  FaultyTransport t(1);
  t.Block(kC, kN0);
  int ran = 0;
  Status s = Call(&t, kC, kN0, [&] {
    ++ran;
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ran, 0);
}

TEST(NetCallTest, LostReplyMeansOpRanButCallerSeesFailure) {
  FaultyTransport t(1);
  t.Block(kN0, kC);  // reply leg only
  int ran = 0;
  Status s = Call(&t, kC, kN0, [&] {
    ++ran;
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ran, 1);  // the ambiguous-outcome case
}

TEST(NetCallTest, CleanLinkReturnsOpResult) {
  DirectTransport t;
  StatusOr<int> r = Call(&t, kC, kN0, [] { return StatusOr<int>(41 + 1); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

}  // namespace
}  // namespace couchkv::net
