// Partition torture: one-way network partitions stall DCP replication
// mid-workload; after the partition heals, replicas must converge on their
// actives with no acked write lost (stall-don't-skip delivery). Also
// exercises XDCR across a lossy inter-cluster network.
#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.h"
#include "harness/torture.h"
#include "net/faulty_transport.h"
#include "xdcr/xdcr.h"

namespace couchkv {
namespace {

class TorturePartitionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TorturePartitionTest, ReplicasConvergeAfterOneWayPartitionHeals) {
  const uint64_t seed = GetParam();
  cluster::Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());

  net::FaultyTransport transport(seed);
  cluster.set_transport(&transport);

  // Cut replication node 0 -> node 1 one way mid-workload. Front-end writes
  // keep succeeding (clients reach every node); the affected DCP streams
  // stall and retry rather than skipping mutations.
  transport.Block(net::Endpoint::Node(0), net::Endpoint::Node(1));

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 4;
  opts.ops_per_client = 120;
  opts.keys_per_client = 20;
  opts.persist_every = 0;  // plain memory-acked writes; no crash here
  harness::TortureDriver driver(&cluster, "default", opts);
  driver.Run();

  // While partitioned, at least the node0->node1 links show refused traffic
  // if any vBucket replicates that way (with 4 nodes and a balanced map,
  // some do).
  EXPECT_GT(transport.stats().blocked, 0u);

  transport.HealAll();
  driver.Settle();

  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
  cluster.set_transport(nullptr);
}

TEST_P(TorturePartitionTest, IsolatedNodeCatchesUpAfterHeal) {
  const uint64_t seed = GetParam();
  cluster::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());

  net::FaultyTransport transport(seed);
  cluster.set_transport(&transport);

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 3;
  opts.ops_per_client = 80;
  opts.keys_per_client = 16;
  opts.persist_every = 0;
  harness::TortureDriver driver(&cluster, "default", opts);

  // Isolate node 2 from node-to-node traffic only: clients can still reach
  // it (its active partitions keep taking writes), but replication in and
  // out of it stalls until the heal.
  transport.Block(net::Endpoint::Node(0), net::Endpoint::Node(2));
  transport.Block(net::Endpoint::Node(1), net::Endpoint::Node(2));
  transport.Block(net::Endpoint::Node(2), net::Endpoint::Node(0));
  transport.Block(net::Endpoint::Node(2), net::Endpoint::Node(1));
  driver.Run();
  transport.HealAll();
  driver.Settle();

  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
  cluster.set_transport(nullptr);
}

TEST_P(TorturePartitionTest, XdcrDeliversEverythingOverLossyLink) {
  const uint64_t seed = GetParam();
  cluster::Cluster source, target;
  for (int i = 0; i < 2; ++i) source.AddNode();
  for (int i = 0; i < 2; ++i) target.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(source.CreateBucket(cfg).ok());
  ASSERT_TRUE(target.CreateBucket(cfg).ok());

  // The inter-cluster hop goes through the *target* cluster's transport
  // (the shipper calls into the destination). Make it lossy.
  net::FaultyTransport wan(seed);
  net::LinkFaults lossy;
  lossy.drop = 0.2;
  wan.SetDefaultFaults(lossy);
  target.set_transport(&wan);

  auto link = std::make_shared<xdcr::XdcrLink>(
      &source, &target, xdcr::XdcrSpec{"default", "default", ""});
  ASSERT_TRUE(link->Start("xdcr-torture").ok());

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 2;
  opts.ops_per_client = 60;
  opts.keys_per_client = 12;
  opts.persist_every = 0;
  harness::TortureDriver driver(&source, "default", opts);
  driver.Run();

  // Drain the pipeline: source DCP -> shipper (retrying through drops) ->
  // target apply -> target replication.
  for (int i = 0; i < 5; ++i) {
    source.Quiesce();
    target.Quiesce();
  }
  wan.Reset();
  source.Quiesce();
  target.Quiesce();

  // Every key present at the source must have arrived at the target with
  // the same value (shipping is at-least-once; conflict resolution makes
  // re-delivery idempotent).
  client::SmartClient src_client(&source, "default", {}, 501);
  client::SmartClient dst_client(&target, "default", {}, 502);
  for (const auto& [key, hist] : driver.history()) {
    auto s = src_client.Get(key);
    if (!s.ok()) continue;  // never written
    auto d = dst_client.Get(key);
    ASSERT_TRUE(d.ok()) << key << " missing at XDCR target: "
                        << d.status().ToString();
    EXPECT_EQ(d.value().value, s.value().value) << "divergence on " << key;
  }
  EXPECT_GT(link->stats().docs_sent, 0u);
  target.set_transport(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TorturePartitionTest,
                         ::testing::Values(3, 777, 0xfeedface),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace couchkv
