// Wire-protocol conformance, in two halves. The codec half pins the byte
// layout with golden frames and round-trips every opcode and status through
// Encode + FrameDecoder under adversarial fragmentation — no I/O anywhere.
// The socket half drives a real cluster through its TCP listeners (via
// WireClient and raw frames): KV + CAS + GETL semantics over the wire,
// NotMyVBucket from a mis-routed frame, pipelining, the cluster-map
// bootstrap document, and the port policy (kernel-assigned ports, loud
// double-bind failure, rediscovery after a listener restart).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "client/wire_client.h"
#include "cluster/cluster.h"
#include "cluster/vbucket_map.h"
#include "json/value.h"
#include "net/tcp_server.h"
#include "net/wire/wire.h"

namespace couchkv {
namespace {

namespace wire = net::wire;

// --- Codec: golden bytes -----------------------------------------------

TEST(WireCodec, GoldenSetRequestBytes) {
  wire::Message m = wire::Message::Req(wire::Opcode::kSet);
  m.vbucket = 0x1234;
  m.opaque = 0xAABBCCDD;
  m.cas = 0x1122334455667788ULL;
  wire::PutMutationExtras(&m.extras, 0x01020304, 0x05060708);
  m.key = "key";
  m.value = "val";

  std::string encoded;
  ASSERT_TRUE(wire::Encode(m, &encoded).ok());

  const std::string expected(
      "\x80\x01\x00\x03"                   // magic, SET, key length 3
      "\x08\x00\x12\x34"                   // extras 8, data type 0, vbucket
      "\x00\x00\x00\x0e"                   // total body = 8 + 3 + 3
      "\xaa\xbb\xcc\xdd"                   // opaque
      "\x11\x22\x33\x44\x55\x66\x77\x88"  // cas
      "\x01\x02\x03\x04\x05\x06\x07\x08"  // extras: flags, expiry
      "key"
      "val",
      38);
  EXPECT_EQ(encoded, expected);

  wire::FrameDecoder dec(wire::kMagicRequest);
  dec.Feed(encoded);
  wire::Message out;
  Status error = Status::OK();
  ASSERT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.magic, wire::kMagicRequest);
  EXPECT_EQ(out.opcode, static_cast<uint8_t>(wire::Opcode::kSet));
  EXPECT_EQ(out.vbucket, 0x1234);
  EXPECT_EQ(out.status, 0);
  EXPECT_EQ(out.opaque, 0xAABBCCDDu);
  EXPECT_EQ(out.cas, 0x1122334455667788ULL);
  EXPECT_EQ(out.extras, m.extras);
  EXPECT_EQ(out.key, "key");
  EXPECT_EQ(out.value, "val");
}

TEST(WireCodec, GoldenErrorResponseBytes) {
  wire::Message req = wire::Message::Req(wire::Opcode::kGet);
  req.opaque = 7;
  wire::Message resp = wire::Message::Resp(req, wire::kKeyNotFound);
  resp.value = "missing";

  std::string encoded;
  ASSERT_TRUE(wire::Encode(resp, &encoded).ok());

  const std::string expected(
      "\x81\x00\x00\x00"                   // magic, GET, no key
      "\x00\x00\x00\x01"                   // no extras, data type 0, status
      "\x00\x00\x00\x07"                   // body = 7 ("missing")
      "\x00\x00\x00\x07"                   // opaque echoed
      "\x00\x00\x00\x00\x00\x00\x00\x00"  // cas
      "missing",
      31);
  EXPECT_EQ(encoded, expected);

  wire::FrameDecoder dec(wire::kMagicResponse);
  dec.Feed(encoded);
  wire::Message out;
  Status error = Status::OK();
  ASSERT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.status, wire::kKeyNotFound);
  EXPECT_EQ(out.vbucket, 0);
  EXPECT_EQ(out.opaque, 7u);
  EXPECT_EQ(out.value, "missing");
}

// --- Codec: exhaustive opcode / status round-trips ----------------------

TEST(WireCodec, EveryOpcodeRoundTrips) {
  const wire::Opcode kOps[] = {
      wire::Opcode::kGet,       wire::Opcode::kSet,
      wire::Opcode::kAdd,       wire::Opcode::kReplace,
      wire::Opcode::kDelete,    wire::Opcode::kNoop,
      wire::Opcode::kStat,      wire::Opcode::kTouch,
      wire::Opcode::kGetLocked, wire::Opcode::kUnlockKey,
      wire::Opcode::kGetClusterMap, wire::Opcode::kObserveTrace,
  };
  uint32_t opaque = 100;
  for (wire::Opcode op : kOps) {
    SCOPED_TRACE(wire::OpcodeName(static_cast<uint8_t>(op)));
    EXPECT_TRUE(wire::IsKnownOpcode(static_cast<uint8_t>(op)));
    wire::Message m = wire::Message::Req(op);
    m.vbucket = 42;
    m.opaque = opaque++;
    m.cas = 0xfeedface;
    m.key = "some-key";
    m.extras = "\x01\x02\x03\x04";
    m.value = "payload bytes";

    std::string encoded;
    ASSERT_TRUE(wire::Encode(m, &encoded).ok());
    wire::FrameDecoder dec(wire::kMagicRequest);
    dec.Feed(encoded);
    wire::Message out;
    Status error = Status::OK();
    ASSERT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kFrame);
    EXPECT_EQ(out.opcode, static_cast<uint8_t>(op));
    EXPECT_EQ(out.vbucket, m.vbucket);
    EXPECT_EQ(out.opaque, m.opaque);
    EXPECT_EQ(out.cas, m.cas);
    EXPECT_EQ(out.extras, m.extras);
    EXPECT_EQ(out.key, m.key);
    EXPECT_EQ(out.value, m.value);
    // Nothing may linger: one frame in, one frame out.
    EXPECT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kNeedMore);
  }
  EXPECT_FALSE(wire::IsKnownOpcode(0xee));
}

TEST(WireCodec, EveryStatusCodeRoundTripsThroughWireStatus) {
  const StatusCode kCodes[] = {
      StatusCode::kOk,          StatusCode::kNotFound,
      StatusCode::kKeyExists,   StatusCode::kLocked,
      StatusCode::kNotMyVBucket, StatusCode::kTempFail,
      StatusCode::kTimeout,     StatusCode::kInvalidArgument,
      StatusCode::kParseError,  StatusCode::kPlanError,
      StatusCode::kIOError,     StatusCode::kCorruption,
      StatusCode::kUnsupported, StatusCode::kAborted,
      StatusCode::kInternal,
  };
  for (StatusCode code : kCodes) {
    SCOPED_TRACE(StatusCodeName(code));
    const uint16_t ws = wire::WireStatusFor(code);
    EXPECT_EQ(wire::StatusFromWire(ws, "msg").code(), code);
  }
  // The protocol statuses with no couchkv twin still map somewhere sane.
  EXPECT_EQ(wire::StatusFromWire(wire::kUnknownCommand, "m").code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(wire::StatusFromWire(wire::kNotStored, "m").code(),
            StatusCode::kInternal);
  EXPECT_EQ(wire::StatusFromWire(0x7777, "m").code(), StatusCode::kInternal);
}

// --- Codec: fragmentation and pipelining --------------------------------

TEST(WireCodec, ReassemblesFramesFedOneByteAtATime) {
  std::string stream;
  for (int i = 0; i < 3; ++i) {
    wire::Message m = wire::Message::Req(wire::Opcode::kSet);
    m.opaque = 10 + i;
    m.key = "k" + std::to_string(i);
    wire::PutMutationExtras(&m.extras, 0, 0);
    m.value = std::string(i * 7, 'v');
    ASSERT_TRUE(wire::Encode(m, &stream).ok());
  }

  wire::FrameDecoder dec(wire::kMagicRequest);
  std::vector<wire::Message> frames;
  wire::Message out;
  Status error = Status::OK();
  for (char c : stream) {
    dec.Feed(std::string_view(&c, 1));
    // Drain everything available after each byte; mid-frame the decoder
    // must keep answering kNeedMore, never error.
    wire::FrameDecoder::Result r;
    while ((r = dec.Next(&out, &error)) ==
           wire::FrameDecoder::Result::kFrame) {
      frames.push_back(out);
    }
    ASSERT_EQ(r, wire::FrameDecoder::Result::kNeedMore)
        << error.ToString() << " after " << frames.size() << " frames";
  }
  ASSERT_EQ(frames.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(frames[i].opaque, 10u + i);
    EXPECT_EQ(frames[i].key, "k" + std::to_string(i));
    EXPECT_EQ(frames[i].value.size(), static_cast<size_t>(i * 7));
  }
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireCodec, DrainsManyPipelinedFramesFromOneFeed) {
  constexpr int kFrames = 64;
  std::string stream;
  for (int i = 0; i < kFrames; ++i) {
    wire::Message m = wire::Message::Req(wire::Opcode::kGet);
    m.opaque = static_cast<uint32_t>(i);
    m.key = "key" + std::to_string(i);
    ASSERT_TRUE(wire::Encode(m, &stream).ok());
  }
  wire::FrameDecoder dec(wire::kMagicRequest);
  dec.Feed(stream);
  wire::Message out;
  Status error = Status::OK();
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kFrame);
    EXPECT_EQ(out.opaque, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(dec.Next(&out, &error), wire::FrameDecoder::Result::kNeedMore);
}

TEST(WireCodec, EncodeRejectsOversizedFields) {
  wire::Message m = wire::Message::Req(wire::Opcode::kSet);
  m.extras = std::string(256, 'x');
  std::string out;
  EXPECT_EQ(wire::Encode(m, &out).code(), StatusCode::kInvalidArgument);

  m = wire::Message::Req(wire::Opcode::kSet);
  m.key = std::string(UINT16_MAX + 1, 'k');
  out.clear();
  EXPECT_EQ(wire::Encode(m, &out).code(), StatusCode::kInvalidArgument);

  m = wire::Message::Req(wire::Opcode::kSet);
  m.key = "k";
  m.value = std::string(wire::kMaxBodyLen, 'v');  // +1 over with the key
  out.clear();
  EXPECT_EQ(wire::Encode(m, &out).code(), StatusCode::kInvalidArgument);
}

// --- Socket conformance over a live cluster -----------------------------

class WireConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) cluster_.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    ASSERT_TRUE(cluster_.StartWireServers("default").ok());
    for (cluster::NodeId id : cluster_.node_ids()) {
      ports_.push_back(cluster_.wire_port(id));
    }
    ASSERT_EQ(ports_.size(), 3u);
  }

  cluster::Cluster cluster_;
  std::vector<uint16_t> ports_;
};

TEST_F(WireConformanceTest, SetGetDeleteOverSocket) {
  client::WireClient client(ports_, "default");
  auto put = client.Upsert("wk", "{\"v\":1}");
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_NE(put->cas, 0u);
  EXPECT_NE(put->seqno, 0u);

  auto got = client.Get("wk");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->value, "{\"v\":1}");
  EXPECT_EQ(got->cas, put->cas);

  ASSERT_TRUE(client.Remove("wk").ok());
  EXPECT_TRUE(client.Get("wk").status().IsNotFound());
  EXPECT_TRUE(client.Remove("wk").status().IsNotFound());
}

TEST_F(WireConformanceTest, InsertAndReplaceSemanticsOverSocket) {
  client::WireClient client(ports_, "default");
  EXPECT_TRUE(client.Replace("ik", "v").status().IsNotFound());
  ASSERT_TRUE(client.Insert("ik", "v1").ok());
  EXPECT_TRUE(client.Insert("ik", "v2").status().IsKeyExists());
  ASSERT_TRUE(client.Replace("ik", "v3").ok());
  auto got = client.Get("ik");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->value, "v3");
}

TEST_F(WireConformanceTest, CasSemanticsOverSocket) {
  client::WireClient client(ports_, "default");
  auto put = client.Upsert("ck", "v1");
  ASSERT_TRUE(put.ok());

  client::WriteOptions stale;
  stale.cas = put->cas + 1;
  EXPECT_TRUE(client.Upsert("ck", "stomp", stale).status().IsKeyExists());

  client::WriteOptions match;
  match.cas = put->cas;
  auto put2 = client.Upsert("ck", "v2", match);
  ASSERT_TRUE(put2.ok());
  EXPECT_NE(put2->cas, put->cas);

  // A CAS-carrying delete must see the current cas too.
  EXPECT_TRUE(client.Remove("ck", put->cas).status().IsKeyExists());
  EXPECT_TRUE(client.Remove("ck", put2->cas).ok());
}

TEST_F(WireConformanceTest, LockWorkflowOverSocket) {
  client::WireClient client(ports_, "default");
  ASSERT_TRUE(client.Upsert("lk", "v").ok());
  auto locked = client.GetAndLock("lk", 15000);
  ASSERT_TRUE(locked.ok()) << locked.status().ToString();
  EXPECT_EQ(locked->value, "v");

  // A second lock and a lock-blind write both bounce off the lock.
  EXPECT_TRUE(client.GetAndLock("lk", 15000).status().IsLocked());
  EXPECT_TRUE(client.Upsert("lk", "steal").status().IsLocked());

  // The lock cas opens the door; unlock releases it for everyone.
  client::WriteOptions opts;
  opts.cas = locked->cas;
  ASSERT_TRUE(client.Upsert("lk", "mine", opts).ok());

  auto relocked = client.GetAndLock("lk", 15000);
  ASSERT_TRUE(relocked.ok());
  ASSERT_TRUE(client.Unlock("lk", relocked->cas).ok());
  EXPECT_TRUE(client.Upsert("lk", "free").ok());
}

TEST_F(WireConformanceTest, TouchAndStatsOverSocket) {
  client::WireClient client(ports_, "default");
  ASSERT_TRUE(client.Upsert("tk", "v").ok());
  EXPECT_TRUE(client.Touch("tk", 0).ok());
  EXPECT_TRUE(client.Touch("no-such-key", 0).IsNotFound());

  auto stats = client.StatsFor("tk");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto doc = json::Parse(*stats);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(doc->is_object());
}

TEST_F(WireConformanceTest, MisroutedFrameGetsNotMyVBucket) {
  client::WireClient client(ports_, "default");
  ASSERT_TRUE(client.Upsert("nmvb-key", "v").ok());
  const uint16_t vb = cluster::KeyToVBucket("nmvb-key", client.num_vbuckets());

  // Aim the same GET at every node directly. Exactly one hosts the active
  // vBucket; the replica and the bystander must answer NotMyVBucket, not
  // serve (or invent) data.
  int successes = 0;
  for (uint16_t port : ports_) {
    wire::Message req = wire::Message::Req(wire::Opcode::kGet);
    req.vbucket = vb;
    req.key = "nmvb-key";
    auto resp = client::RawRoundTrip(port, req);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    if (resp->status == wire::kSuccess) {
      ++successes;
      EXPECT_EQ(resp->value, "v");
    } else {
      EXPECT_EQ(resp->status, wire::kNotMyVBucketErr);
    }
  }
  EXPECT_EQ(successes, 1);
}

TEST_F(WireConformanceTest, PipelinedFramesAnswerInOrder) {
  client::WireClient client(ports_, "default");
  ASSERT_TRUE(client.Upsert("pipe", "v0").ok());
  const uint16_t vb = cluster::KeyToVBucket("pipe", client.num_vbuckets());

  // Find the active node by probing: exactly one port serves this vBucket.
  uint16_t active_port = 0;
  for (uint16_t port : ports_) {
    wire::Message probe = wire::Message::Req(wire::Opcode::kGet);
    probe.vbucket = vb;
    probe.key = "pipe";
    auto resp = client::RawRoundTrip(port, probe);
    ASSERT_TRUE(resp.ok());
    if (resp->status == wire::kSuccess) active_port = port;
  }
  ASSERT_NE(active_port, 0);

  // One burst of alternating SET/GET frames on a single connection. The
  // server must answer every frame, in order, with the opaques echoed.
  std::vector<wire::Message> reqs;
  for (int i = 0; i < 16; ++i) {
    wire::Message m;
    if (i % 2 == 0) {
      m = wire::Message::Req(wire::Opcode::kSet);
      wire::PutMutationExtras(&m.extras, 0, 0);
      m.value = "v" + std::to_string(i);
    } else {
      m = wire::Message::Req(wire::Opcode::kGet);
    }
    m.vbucket = vb;
    m.key = "pipe";
    m.opaque = 1000 + static_cast<uint32_t>(i);
    reqs.push_back(std::move(m));
  }
  auto resps = client::RawPipeline(active_port, reqs);
  ASSERT_TRUE(resps.ok()) << resps.status().ToString();
  ASSERT_EQ(resps->size(), reqs.size());
  for (int i = 0; i < 16; ++i) {
    SCOPED_TRACE(i);
    const wire::Message& r = (*resps)[i];
    EXPECT_EQ(r.opaque, 1000u + i);
    EXPECT_EQ(r.status, wire::kSuccess);
    // Each GET observes the SET pipelined immediately before it.
    if (i % 2 == 1) {
      EXPECT_EQ(r.value, "v" + std::to_string(i - 1));
    }
  }
}

TEST_F(WireConformanceTest, ClusterMapDocumentDescribesTheCluster) {
  wire::Message req = wire::Message::Req(wire::Opcode::kGetClusterMap);
  req.key = "default";
  auto resp = client::RawRoundTrip(ports_[0], req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->status, wire::kSuccess);

  auto doc = json::Parse(resp->value);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Field("bucket").AsString(), "default");
  EXPECT_EQ(doc->Field("num_vbuckets").AsInt(), cluster::kNumVBuckets);
  ASSERT_TRUE(doc->Field("nodes").is_array());
  const auto& nodes = doc->Field("nodes").AsArray();
  ASSERT_EQ(nodes.size(), 3u);
  for (const auto& n : nodes) {
    const auto id = static_cast<cluster::NodeId>(n.Field("id").AsInt());
    EXPECT_EQ(n.Field("port").AsInt(), cluster_.wire_port(id));
  }
  ASSERT_TRUE(doc->Field("active").is_array());
  EXPECT_EQ(doc->Field("active").AsArray().size(), cluster::kNumVBuckets);
}

TEST_F(WireConformanceTest, KernelAssignsDistinctPorts) {
  // Port policy: everyone binds port 0; the kernel hands out fresh ports,
  // so three listeners in one process can never collide.
  for (size_t i = 0; i < ports_.size(); ++i) {
    EXPECT_NE(ports_[i], 0);
    for (size_t j = i + 1; j < ports_.size(); ++j) {
      EXPECT_NE(ports_[i], ports_[j]);
    }
  }
}

TEST_F(WireConformanceTest, DoubleBindFailsLoudly) {
  // SO_REUSEADDR is deliberately not set: binding a port that is already
  // taken must fail the Start, not silently coexist with the first
  // listener.
  net::TcpServer dup(
      [](const wire::Message& req, const net::RequestContext&) {
        return wire::Message::Resp(req, wire::kSuccess);
      },
      net::TcpServerOptions{.port = ports_[0]});
  Status st = dup.Start();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_FALSE(dup.running());
  EXPECT_EQ(dup.port(), 0);
}

TEST_F(WireConformanceTest, ClientRediscoversRestartedListener) {
  // Bootstrap off node 1 only, so losing node 0's listener cannot strand
  // the client's map fetches.
  client::WireClient client({ports_[1]}, "default");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        client.Upsert("rk" + std::to_string(i), "v" + std::to_string(i)).ok());
  }

  ASSERT_TRUE(cluster_.CrashNode(0).ok());
  EXPECT_EQ(cluster_.wire_port(0), 0);  // crashed node has no listener
  ASSERT_TRUE(cluster_.RestartNode(0).ok());
  const uint16_t fresh = cluster_.wire_port(0);
  ASSERT_NE(fresh, 0);

  // The client's cached port for node 0 is stale; every key must still be
  // readable through refresh-and-retry.
  for (int i = 0; i < 20; ++i) {
    auto got = client.Get("rk" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->value, "v" + std::to_string(i));
  }
  ASSERT_TRUE(client.RefreshMap().ok());
  EXPECT_EQ(client.port_of(0), fresh);
}

}  // namespace
}  // namespace couchkv
