// End-to-end N1QL tests: planner access-path selection and full query
// execution against a live 3-node cluster with GSI.
#include <gtest/gtest.h>

#include "client/smart_client.h"
#include "n1ql/query_service.h"

namespace couchkv::n1ql {
namespace {

using json::Value;

class N1qlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) cluster_.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "profiles";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    gsi_ = std::make_shared<gsi::IndexService>(&cluster_);
    gsi_->Attach();
    views_ = std::make_shared<views::ViewEngine>(&cluster_);
    views_->Attach();
    service_ = std::make_unique<QueryService>(&cluster_, gsi_, views_);
    client_ = std::make_unique<client::SmartClient>(&cluster_, "profiles");
  }

  void LoadProfiles(int n) {
    for (int i = 0; i < n; ++i) {
      json::Value doc = json::Value::MakeObject();
      doc["name"] = Value::Str("user" + std::to_string(i));
      doc["email"] = Value::Str("u" + std::to_string(i) + "@example.com");
      doc["age"] = Value::Int(18 + i % 50);
      doc["city"] = Value::Str(i % 2 ? "SF" : "NY");
      ASSERT_TRUE(
          client_->UpsertJson("profile::" + std::to_string(i), doc).ok());
    }
  }

  QueryResult MustQuery(const std::string& q, QueryOptions opts = {}) {
    // request_plus by default so tests are deterministic.
    if (opts.consistency == gsi::ScanConsistency::kNotBounded) {
      opts.consistency = gsi::ScanConsistency::kRequestPlus;
    }
    auto r = service_->Execute(q, opts);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  cluster::Cluster cluster_;
  std::shared_ptr<gsi::IndexService> gsi_;
  std::shared_ptr<views::ViewEngine> views_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<client::SmartClient> client_;
};

TEST_F(N1qlTest, SelectWithoutFrom) {
  auto r = MustQuery("SELECT 1 + 2 AS three");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].Field("three").AsInt(), 3);
}

TEST_F(N1qlTest, UseKeysKeyScan) {
  LoadProfiles(10);
  auto r = MustQuery("SELECT name, email FROM profiles USE KEYS 'profile::3'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].Field("name").AsString(), "user3");
  // No index fetch involved: explain shows KeyScan.
  auto ex = MustQuery("EXPLAIN SELECT * FROM profiles USE KEYS 'profile::3'");
  EXPECT_EQ(ex.rows[0].GetPath("operators[0].#operator").AsString(),
            "KeyScan");
}

TEST_F(N1qlTest, UseKeysMultiple) {
  LoadProfiles(10);
  auto r = MustQuery(
      "SELECT name FROM profiles USE KEYS ['profile::1', 'profile::4']");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(N1qlTest, UseKeysMissingKeyYieldsNoRow) {
  LoadProfiles(2);
  auto r = MustQuery("SELECT * FROM profiles USE KEYS 'nope'");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(N1qlTest, NoIndexMeansPlanError) {
  LoadProfiles(2);
  auto r = service_->Execute("SELECT * FROM profiles WHERE age > 20");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPlanError);
}

TEST_F(N1qlTest, PrimaryIndexEnablesFullScan) {
  LoadProfiles(20);
  MustQuery("CREATE PRIMARY INDEX ON profiles USING GSI");
  auto r = MustQuery("SELECT name FROM profiles WHERE age >= 18");
  EXPECT_EQ(r.rows.size(), 20u);
  auto ex = MustQuery("EXPLAIN SELECT name FROM profiles WHERE age >= 18");
  EXPECT_EQ(ex.rows[0].GetPath("operators[0].#operator").AsString(),
            "PrimaryScan");
}

TEST_F(N1qlTest, SecondaryIndexScanChosen) {
  LoadProfiles(40);
  MustQuery("CREATE INDEX by_age ON profiles(age) USING GSI");
  auto ex = MustQuery("EXPLAIN SELECT name FROM profiles WHERE age = 25");
  EXPECT_EQ(ex.rows[0].GetPath("operators[0].#operator").AsString(),
            "IndexScan");
  EXPECT_EQ(ex.rows[0].GetPath("operators[0].index").AsString(), "by_age");
  auto r = MustQuery("SELECT name, age FROM profiles WHERE age = 25");
  ASSERT_FALSE(r.rows.empty());
  for (const Value& row : r.rows) {
    EXPECT_EQ(row.Field("age").AsInt(), 25);
  }
}

TEST_F(N1qlTest, CoveringIndexAvoidsFetch) {
  LoadProfiles(30);
  MustQuery("CREATE INDEX by_age ON profiles(age) USING GSI");
  auto ex = MustQuery("EXPLAIN SELECT age FROM profiles WHERE age > 40");
  EXPECT_TRUE(ex.rows[0].GetPath("operators[0].covering").AsBool());
  // Non-covered: selects name too.
  auto ex2 = MustQuery("EXPLAIN SELECT name, age FROM profiles WHERE age > 40");
  EXPECT_FALSE(ex2.rows[0].GetPath("operators[0].covering").AsBool());

  auto covered = MustQuery("SELECT age FROM profiles WHERE age > 40");
  EXPECT_EQ(covered.metrics.docs_fetched, 0u);  // §5.1.2: no fetch at all
  auto fetched = MustQuery("SELECT name, age FROM profiles WHERE age > 40");
  EXPECT_GT(fetched.metrics.docs_fetched, 0u);
  EXPECT_EQ(covered.rows.size(), fetched.rows.size());
}

TEST_F(N1qlTest, RangePredicatesCombine) {
  LoadProfiles(60);
  MustQuery("CREATE INDEX by_age ON profiles(age) USING GSI");
  auto r = MustQuery(
      "SELECT age FROM profiles WHERE age >= 30 AND age < 35 ORDER BY age");
  ASSERT_FALSE(r.rows.empty());
  EXPECT_EQ(r.rows.front().Field("age").AsInt(), 30);
  EXPECT_EQ(r.rows.back().Field("age").AsInt(), 34);
}

TEST_F(N1qlTest, PartialIndexUsedOnlyWhenImplied) {
  LoadProfiles(40);
  MustQuery(
      "CREATE INDEX over21 ON profiles(age) WHERE age > 21 USING GSI");
  // Query repeating the predicate can use it.
  auto ex = MustQuery(
      "EXPLAIN SELECT age FROM profiles WHERE age > 21 AND age = 30");
  EXPECT_EQ(ex.rows[0].GetPath("operators[0].index").AsString(), "over21");
  // Query without the predicate cannot (and has no other index).
  auto r = service_->Execute("SELECT age FROM profiles WHERE age = 30");
  EXPECT_FALSE(r.ok());
}

TEST_F(N1qlTest, OrderLimitOffset) {
  LoadProfiles(20);
  MustQuery("CREATE PRIMARY INDEX ON profiles USING GSI");
  auto r = MustQuery(
      "SELECT name, age FROM profiles WHERE age >= 18 "
      "ORDER BY age DESC, name ASC LIMIT 5 OFFSET 2");
  ASSERT_EQ(r.rows.size(), 5u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1].Field("age").AsInt(),
              r.rows[i].Field("age").AsInt());
  }
}

TEST_F(N1qlTest, GroupByWithAggregates) {
  LoadProfiles(30);
  MustQuery("CREATE PRIMARY INDEX ON profiles USING GSI");
  auto r = MustQuery(
      "SELECT city, COUNT(*) AS n, AVG(age) AS avg_age, MIN(age) AS min_age "
      "FROM profiles WHERE age >= 18 GROUP BY city ORDER BY city");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].Field("city").AsString(), "NY");
  EXPECT_EQ(r.rows[0].Field("n").AsInt(), 15);
  EXPECT_GT(r.rows[0].Field("avg_age").AsNumber(), 17.0);
  // HAVING filters groups.
  auto h = MustQuery(
      "SELECT city, COUNT(*) AS n FROM profiles WHERE age >= 18 "
      "GROUP BY city HAVING COUNT(*) > 100");
  EXPECT_TRUE(h.rows.empty());
}

TEST_F(N1qlTest, GlobalAggregateWithoutGroupBy) {
  LoadProfiles(25);
  MustQuery("CREATE PRIMARY INDEX ON profiles USING GSI");
  auto r = MustQuery("SELECT COUNT(*) AS total FROM profiles WHERE age >= 0");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].Field("total").AsInt(), 25);
}

TEST_F(N1qlTest, JoinOnKeys) {
  // Orders reference customer keys: the only join N1QL allows (§3.2.4).
  cluster::BucketConfig cfg;
  cfg.name = "orders";
  cfg.num_replicas = 0;
  ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
  client::SmartClient orders(&cluster_, "orders");
  ASSERT_TRUE(client_->Upsert("cust::1", R"({"name":"Alice"})").ok());
  ASSERT_TRUE(client_->Upsert("cust::2", R"({"name":"Bob"})").ok());
  ASSERT_TRUE(
      orders.Upsert("ord::1", R"({"cust":"cust::1","total":10})").ok());
  ASSERT_TRUE(
      orders.Upsert("ord::2", R"({"cust":"cust::1","total":20})").ok());
  ASSERT_TRUE(
      orders.Upsert("ord::3", R"({"cust":"cust::9","total":30})").ok());

  auto r = MustQuery(
      "SELECT o.total, c.name FROM orders o "
      "USE KEYS ['ord::1','ord::2','ord::3'] "
      "INNER JOIN profiles c ON KEYS o.cust ORDER BY o.total");
  ASSERT_EQ(r.rows.size(), 2u);  // ord::3 has no matching customer
  EXPECT_EQ(r.rows[0].Field("name").AsString(), "Alice");

  auto lo = MustQuery(
      "SELECT o.total, c.name FROM orders o "
      "USE KEYS ['ord::1','ord::3'] "
      "LEFT JOIN profiles c ON KEYS o.cust ORDER BY o.total");
  ASSERT_EQ(lo.rows.size(), 2u);  // left outer keeps ord::3
  EXPECT_TRUE(lo.rows[1].Field("name").is_missing());
}

TEST_F(N1qlTest, NestCollectsIntoArray) {
  // The paper's §3.2.3 NEST: orders embedded as an array in the user.
  cluster::BucketConfig cfg;
  cfg.name = "po";
  cfg.num_replicas = 0;
  ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
  client::SmartClient po(&cluster_, "po");
  ASSERT_TRUE(po.Upsert("borkar123", R"({
      "personal_details": {"name": "Dipti"},
      "shipped_order_history": [
        {"order_id": "order::1"}, {"order_id": "order::2"}]})")
                  .ok());
  ASSERT_TRUE(po.Upsert("order::1", R"({"item":"couch","qty":1})").ok());
  ASSERT_TRUE(po.Upsert("order::2", R"({"item":"base","qty":2})").ok());

  auto r = MustQuery(
      "SELECT PO.personal_details, orders FROM po PO USE KEYS 'borkar123' "
      "NEST po AS orders "
      "ON KEYS ARRAY s.order_id FOR s IN PO.shipped_order_history END");
  ASSERT_EQ(r.rows.size(), 1u);
  const Value& orders = r.rows[0].Field("orders");
  ASSERT_TRUE(orders.is_array());
  EXPECT_EQ(orders.AsArray().size(), 2u);
  EXPECT_EQ(r.rows[0].GetPath("personal_details.name").AsString(), "Dipti");
}

TEST_F(N1qlTest, UnnestFlattensArrays) {
  cluster::BucketConfig cfg;
  cfg.name = "product";
  cfg.num_replicas = 0;
  ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
  client::SmartClient prod(&cluster_, "product");
  ASSERT_TRUE(
      prod.Upsert("p1", R"({"categories":["sofa","living"]})").ok());
  ASSERT_TRUE(
      prod.Upsert("p2", R"({"categories":["sofa","office"]})").ok());

  // The paper's §3.2.3 UNNEST example (distinct in-use categories).
  auto r = MustQuery(
      "SELECT DISTINCT categories FROM product USE KEYS ['p1','p2'] "
      "UNNEST product.categories AS categories ORDER BY categories");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].Field("categories").AsString(), "living");
  EXPECT_EQ(r.rows[1].Field("categories").AsString(), "office");
  EXPECT_EQ(r.rows[2].Field("categories").AsString(), "sofa");
}

TEST_F(N1qlTest, DmlInsertUpdateDelete) {
  auto ins = MustQuery(
      R"(INSERT INTO profiles (KEY, VALUE)
         VALUES ("p::a", {"name": "A", "age": 1}),
                ("p::b", {"name": "B", "age": 2}))");
  EXPECT_EQ(ins.metrics.mutation_count, 2u);
  // Duplicate INSERT fails; UPSERT succeeds.
  EXPECT_FALSE(
      service_->Execute(
                  R"(INSERT INTO profiles (KEY, VALUE) VALUES ("p::a", 1))")
          .ok());
  MustQuery(R"(UPSERT INTO profiles (KEY, VALUE)
               VALUES ("p::a", {"name": "A2", "age": 10}))");
  auto up = MustQuery(
      "UPDATE profiles USE KEYS 'p::b' SET age = 99, extra.note = 'hi'");
  EXPECT_EQ(up.metrics.mutation_count, 1u);
  auto check = MustQuery("SELECT age, extra FROM profiles USE KEYS 'p::b'");
  EXPECT_EQ(check.rows[0].Field("age").AsInt(), 99);
  EXPECT_EQ(check.rows[0].GetPath("extra.note").AsString(), "hi");
  auto del = MustQuery("DELETE FROM profiles USE KEYS 'p::a'");
  EXPECT_EQ(del.metrics.mutation_count, 1u);
  EXPECT_TRUE(client_->Get("p::a").status().IsNotFound());
}

TEST_F(N1qlTest, UpdateWithWhereViaIndex) {
  LoadProfiles(20);
  MustQuery("CREATE INDEX by_age ON profiles(age) USING GSI");
  auto r = MustQuery("UPDATE profiles SET city = 'LA' WHERE age = 20");
  EXPECT_GT(r.metrics.mutation_count, 0u);
  auto check = MustQuery("SELECT city FROM profiles WHERE age = 20");
  for (const Value& row : check.rows) {
    EXPECT_EQ(row.Field("city").AsString(), "LA");
  }
}

TEST_F(N1qlTest, WorkloadEStyleQuery) {
  LoadProfiles(50);
  MustQuery("CREATE PRIMARY INDEX ON profiles USING GSI");
  QueryOptions opts;
  opts.params = {Value::Str("profile::2"), Value::Int(5)};
  auto r = MustQuery(
      "SELECT meta().id AS id FROM profiles WHERE meta().id >= $1 LIMIT $2",
      opts);
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0].Field("id").AsString(), "profile::2");
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LT(r.rows[i - 1].Field("id").AsString(),
              r.rows[i].Field("id").AsString());
  }
}

TEST_F(N1qlTest, AnySatisfiesFilter) {
  cluster::BucketConfig cfg;
  cfg.name = "orders2";
  cfg.num_replicas = 0;
  ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
  client::SmartClient orders(&cluster_, "orders2");
  ASSERT_TRUE(orders.Upsert("o1", R"({"items":[{"sku":"a"},{"sku":"b"}]})")
                  .ok());
  ASSERT_TRUE(orders.Upsert("o2", R"({"items":[{"sku":"c"}]})").ok());
  auto r = MustQuery(
      "SELECT META(o).id AS id FROM orders2 o USE KEYS ['o1','o2'] "
      "WHERE ANY i IN o.items SATISFIES i.sku = 'b' END");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].Field("id").AsString(), "o1");
}

TEST_F(N1qlTest, ScanConsistencyNotBoundedVsRequestPlus) {
  MustQuery("CREATE INDEX by_age ON profiles(age) USING GSI");
  cluster_.Quiesce();
  ASSERT_TRUE(client_->Upsert("fresh", R"({"age":123})").ok());
  // request_plus must see the write that preceded the query (§3.2.3).
  QueryOptions plus;
  plus.consistency = gsi::ScanConsistency::kRequestPlus;
  auto r = service_->Execute(
      "SELECT age FROM profiles WHERE age = 123", plus);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(N1qlTest, CreateIndexUsingViewAndDrop) {
  LoadProfiles(5);
  MustQuery("CREATE INDEX email_view ON profiles(email) USING VIEW");
  // The view exists and is queryable through the view engine.
  views::ViewQueryOptions vopts;
  auto vr = views_->Query("profiles", "email_view", vopts,
                          views::Staleness::kFalse);
  ASSERT_TRUE(vr.ok());
  EXPECT_EQ(vr->rows.size(), 5u);
  MustQuery("DROP INDEX profiles.email_view");
  EXPECT_FALSE(views_->Query("profiles", "email_view", vopts).ok());
}

TEST_F(N1qlTest, MdsNoQueryNodeRefusesQueries) {
  cluster::Cluster c;
  c.AddNode(cluster::kDataService | cluster::kIndexService);
  cluster::BucketConfig cfg;
  cfg.name = "b";
  cfg.num_replicas = 0;
  ASSERT_TRUE(c.CreateBucket(cfg).ok());
  auto g = std::make_shared<gsi::IndexService>(&c);
  g->Attach();
  auto v = std::make_shared<views::ViewEngine>(&c);
  v->Attach();
  QueryService qs(&c, g, v);
  auto r = qs.Execute("SELECT 1");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(N1qlTest, ExplainListsOperatorPipeline) {
  LoadProfiles(5);
  MustQuery("CREATE PRIMARY INDEX ON profiles USING GSI");
  auto ex = MustQuery(
      "EXPLAIN SELECT city, COUNT(*) FROM profiles WHERE age > 1 "
      "GROUP BY city ORDER BY city LIMIT 2");
  const Value& ops = ex.rows[0].Field("operators");
  ASSERT_TRUE(ops.is_array());
  // Scan, Fetch, Filter, Group, InitialProject, Sort, Limit, FinalProject.
  EXPECT_EQ(ops.AsArray().size(), 8u);
}

}  // namespace
}  // namespace couchkv::n1ql
