// Tests for the N1QL lexer, parser, and expression evaluator.
#include <gtest/gtest.h>

#include "n1ql/expr_eval.h"
#include "n1ql/lexer.h"
#include "n1ql/parser.h"

namespace couchkv::n1ql {
namespace {

using json::Value;

// --- Lexer ---

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT * FROM b WHERE a >= 10").value();
  ASSERT_EQ(tokens.size(), 9u);  // incl. EOF
  EXPECT_EQ(tokens[0].upper, "SELECT");
  EXPECT_EQ(tokens[1].type, TokenType::kStar);
  EXPECT_EQ(tokens[6].type, TokenType::kGte);
  EXPECT_EQ(tokens[7].number, 10.0);
}

TEST(LexerTest, StringsAndEscapes) {
  auto tokens = Tokenize("'it''s' \"two\"").value();
  EXPECT_EQ(tokens[0].text, "it's");
  EXPECT_EQ(tokens[1].text, "two");
}

TEST(LexerTest, BacktickIdentifiers) {
  auto tokens = Tokenize("`Profile Bucket`").value();
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Profile Bucket");
}

TEST(LexerTest, Parameters) {
  auto tokens = Tokenize("$1 $42").value();
  EXPECT_EQ(tokens[0].param_index, 1u);
  EXPECT_EQ(tokens[1].param_index, 42u);
}

TEST(LexerTest, Comments) {
  auto tokens = Tokenize("SELECT -- line comment\n 1 /* block */ + 2").value();
  EXPECT_EQ(tokens.size(), 5u);  // SELECT 1 + 2 EOF
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("`unterminated").ok());
  EXPECT_FALSE(Tokenize("$abc").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

// --- Parser: statements ---

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseStatement("SELECT name, email FROM profiles WHERE age > 21")
                  .value();
  EXPECT_EQ(stmt.kind, Statement::Kind::kSelect);
  ASSERT_EQ(stmt.select.items.size(), 2u);
  EXPECT_EQ(stmt.select.items[0].alias, "name");
  ASSERT_TRUE(stmt.select.from.has_value());
  EXPECT_EQ(stmt.select.from->keyspace, "profiles");
  ASSERT_NE(stmt.select.where, nullptr);
}

TEST(ParserTest, UseKeysSingle) {
  auto stmt =
      ParseStatement(R"(SELECT * FROM profiles USE KEYS "acme-uuid-1234")")
          .value();
  ASSERT_NE(stmt.select.from->use_keys, nullptr);
  EXPECT_EQ(stmt.select.from->use_keys->kind, ExprKind::kLiteral);
}

TEST(ParserTest, UseKeysMultiple) {
  auto stmt = ParseStatement(
                  R"(SELECT * FROM profiles USE KEYS ["k1", "k2"])")
                  .value();
  EXPECT_EQ(stmt.select.from->use_keys->kind, ExprKind::kArrayLiteral);
}

TEST(ParserTest, PaperNestExample) {
  // The NEST example from §3.2.3 of the paper.
  auto stmt = ParseStatement(R"(
      SELECT PO.personal_details, orders
      FROM profiles_orders PO
      USE KEYS 'borkar123'
      NEST profiles_orders AS orders
      ON KEYS ARRAY s.order_id FOR s IN PO.shipped_order_history END)")
                  .value();
  ASSERT_EQ(stmt.select.joins.size(), 1u);
  const JoinClause& nest = stmt.select.joins[0];
  EXPECT_EQ(nest.kind, JoinClause::Kind::kNest);
  EXPECT_EQ(nest.alias, "orders");
  ASSERT_NE(nest.on_keys, nullptr);
  EXPECT_EQ(nest.on_keys->kind, ExprKind::kArrayComprehension);
}

TEST(ParserTest, PaperUnnestExample) {
  auto stmt = ParseStatement(
                  "SELECT DISTINCT categories FROM product "
                  "UNNEST product.categories AS categories")
                  .value();
  EXPECT_TRUE(stmt.select.distinct);
  ASSERT_EQ(stmt.select.joins.size(), 1u);
  EXPECT_EQ(stmt.select.joins[0].kind, JoinClause::Kind::kUnnest);
  EXPECT_EQ(stmt.select.joins[0].alias, "categories");
}

TEST(ParserTest, PaperJoinExample) {
  auto stmt = ParseStatement(
                  "SELECT * FROM ORDERS O INNER JOIN CUSTOMER C "
                  "ON KEYS O.O_C_ID")
                  .value();
  ASSERT_EQ(stmt.select.joins.size(), 1u);
  EXPECT_EQ(stmt.select.joins[0].join_kind, JoinKind::kInner);
  EXPECT_EQ(stmt.select.joins[0].keyspace, "CUSTOMER");
  EXPECT_EQ(stmt.select.joins[0].alias, "C");
}

TEST(ParserTest, OrderLimitOffset) {
  auto stmt = ParseStatement(
                  "SELECT title FROM catalog.details "
                  "ORDER BY title DESC LIMIT 10 OFFSET 5")
                  .value();
  EXPECT_EQ(stmt.select.from->keyspace, "details");
  ASSERT_EQ(stmt.select.order_by.size(), 1u);
  EXPECT_TRUE(stmt.select.order_by[0].descending);
  ASSERT_NE(stmt.select.limit, nullptr);
  ASSERT_NE(stmt.select.offset, nullptr);
}

TEST(ParserTest, GroupByHaving) {
  auto stmt = ParseStatement(
                  "SELECT city, COUNT(*) AS n FROM users "
                  "GROUP BY city HAVING COUNT(*) > 2")
                  .value();
  EXPECT_EQ(stmt.select.group_by.size(), 1u);
  ASSERT_NE(stmt.select.having, nullptr);
}

TEST(ParserTest, Explain) {
  auto stmt = ParseStatement("EXPLAIN SELECT * FROM b USE KEYS 'k'").value();
  EXPECT_TRUE(stmt.explain);
}

TEST(ParserTest, WorkloadEQuery) {
  // The exact query shape of §10.1.2.
  auto stmt = ParseStatement(
                  "SELECT meta().id AS id FROM `bucket` "
                  "WHERE meta().id >= $1 LIMIT $2")
                  .value();
  ASSERT_EQ(stmt.select.items.size(), 1u);
  EXPECT_EQ(stmt.select.items[0].expr->kind, ExprKind::kMeta);
  EXPECT_EQ(stmt.select.items[0].alias, "id");
}

TEST(ParserTest, InsertUpsert) {
  auto ins = ParseStatement(
                 R"(INSERT INTO b (KEY, VALUE) VALUES ("k1", {"a": 1}),
                    ("k2", {"a": 2}))")
                 .value();
  EXPECT_EQ(ins.kind, Statement::Kind::kInsert);
  EXPECT_FALSE(ins.insert.upsert);
  EXPECT_EQ(ins.insert.values.size(), 2u);
  auto ups =
      ParseStatement(R"(UPSERT INTO b (KEY, VALUE) VALUES ("k", 1))").value();
  EXPECT_TRUE(ups.insert.upsert);
}

TEST(ParserTest, UpdateSetUnsetWhere) {
  auto stmt = ParseStatement(
                  "UPDATE profiles USE KEYS 'k' "
                  "SET age = 31, addr.city = 'SF' UNSET temp WHERE age > 1")
                  .value();
  EXPECT_EQ(stmt.kind, Statement::Kind::kUpdate);
  ASSERT_EQ(stmt.update.set.size(), 2u);
  EXPECT_EQ(stmt.update.set[1].path, "addr.city");
  ASSERT_EQ(stmt.update.unset.size(), 1u);
}

TEST(ParserTest, DeleteWithWhere) {
  auto stmt =
      ParseStatement("DELETE FROM b WHERE doc_type = 'stale' LIMIT 10")
          .value();
  EXPECT_EQ(stmt.kind, Statement::Kind::kDelete);
  ASSERT_NE(stmt.del.where, nullptr);
}

TEST(ParserTest, CreateIndexVariants) {
  // Paper §3.3 examples.
  auto view_idx =
      ParseStatement("CREATE INDEX email ON `Profile` (email) USING VIEW")
          .value();
  EXPECT_EQ(view_idx.create_index.using_clause,
            CreateIndexStatement::Using::kView);

  auto gsi_idx =
      ParseStatement("CREATE INDEX email ON `Profile` (email) USING GSI")
          .value();
  EXPECT_EQ(gsi_idx.create_index.using_clause,
            CreateIndexStatement::Using::kGsi);

  auto partial = ParseStatement(
                     "CREATE INDEX over21 ON `Profile`(age) "
                     "WHERE age > 21 USING GSI")
                     .value();
  ASSERT_NE(partial.create_index.where, nullptr);

  auto primary = ParseStatement(
                     "CREATE PRIMARY INDEX profile_pk_gsi ON Profile "
                     "USING GSI WITH {\"defer_build\": true}")
                     .value();
  EXPECT_TRUE(primary.create_index.primary);

  auto arr = ParseStatement(
                 "CREATE INDEX by_cat ON product "
                 "(DISTINCT ARRAY c FOR c IN categories END)")
                 .value();
  EXPECT_TRUE(arr.create_index.array_index);

  auto drop = ParseStatement("DROP INDEX Profile.email").value();
  EXPECT_EQ(drop.kind, Statement::Kind::kDropIndex);
  EXPECT_EQ(drop.drop_index.name, "email");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseStatement("SELECT FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM b WHERE").ok());
  EXPECT_FALSE(ParseStatement("FLURB 1").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM b extra garbage !").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO b (KEY) VALUES ('k')").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM b JOIN c").ok());  // no ON KEYS
}

// --- Expression evaluation ---

class EvalTest : public ::testing::Test {
 protected:
  Value EvalText(const std::string& text) {
    auto expr = ParseExpression(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    EvalContext ctx;
    ctx.row = &row_;
    ctx.default_alias = "d";
    ctx.params = &params_;
    auto v = Eval(**expr, ctx);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v.ok() ? std::move(v).value() : Value::Missing();
  }

  void BindDoc(const std::string& json_text) {
    row_.bindings["d"] =
        BoundDoc{json::Parse(json_text).value(), "doc-id-1", 777};
  }

  Row row_;
  std::vector<Value> params_;
};

TEST_F(EvalTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(EvalText("1 + 2 * 3").AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(EvalText("(1 + 2) * 3").AsNumber(), 9.0);
  EXPECT_DOUBLE_EQ(EvalText("10 % 3").AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(EvalText("-5 + 2").AsNumber(), -3.0);
  EXPECT_TRUE(EvalText("1 / 0").is_null());
  EXPECT_TRUE(EvalText("1 + 'x'").is_null());
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(EvalText("2 > 1").AsBool());
  EXPECT_TRUE(EvalText("'abc' < 'abd'").AsBool());
  EXPECT_TRUE(EvalText("2 = 2.0").AsBool());
  EXPECT_TRUE(EvalText("2 != 3").AsBool());
  EXPECT_TRUE(EvalText("1 <> 2").AsBool());
}

TEST_F(EvalTest, BetweenAndIn) {
  EXPECT_TRUE(EvalText("5 BETWEEN 1 AND 10").AsBool());
  EXPECT_FALSE(EvalText("15 BETWEEN 1 AND 10").AsBool());
  EXPECT_TRUE(EvalText("2 IN [1, 2, 3]").AsBool());
  EXPECT_TRUE(EvalText("9 NOT IN [1, 2, 3]").AsBool());
}

TEST_F(EvalTest, LogicThreeValued) {
  EXPECT_TRUE(EvalText("TRUE AND TRUE").AsBool());
  EXPECT_FALSE(EvalText("TRUE AND FALSE").AsBool());
  EXPECT_FALSE(EvalText("FALSE AND NULL").AsBool());  // false dominates
  EXPECT_TRUE(EvalText("NULL AND TRUE").is_null());
  EXPECT_TRUE(EvalText("TRUE OR NULL").AsBool());
  EXPECT_TRUE(EvalText("NOT FALSE").AsBool());
  EXPECT_TRUE(EvalText("NOT NULL").is_null());
}

TEST_F(EvalTest, MissingPropagation) {
  BindDoc(R"({"a":1})");
  EXPECT_TRUE(EvalText("nope > 1").is_missing());
  EXPECT_TRUE(EvalText("nope IS MISSING").AsBool());
  EXPECT_TRUE(EvalText("a IS NOT MISSING").AsBool());
  EXPECT_TRUE(EvalText("a IS VALUED").AsBool());
}

TEST_F(EvalTest, PathNavigation) {
  BindDoc(R"({"a":{"b":[{"c":5},{"c":6}]},"name":"X"})");
  EXPECT_DOUBLE_EQ(EvalText("a.b[1].c").AsNumber(), 6.0);
  EXPECT_EQ(EvalText("d.name").AsString(), "X");  // alias-qualified
  EXPECT_EQ(EvalText("name").AsString(), "X");    // implicit alias
}

TEST_F(EvalTest, MetaFunctions) {
  BindDoc(R"({"a":1})");
  EXPECT_EQ(EvalText("META().id").AsString(), "doc-id-1");
  EXPECT_EQ(EvalText("META(d).id").AsString(), "doc-id-1");
  EXPECT_DOUBLE_EQ(EvalText("META(d).cas").AsNumber(), 777.0);
}

TEST_F(EvalTest, Like) {
  EXPECT_TRUE(EvalText("'hello' LIKE 'h%'").AsBool());
  EXPECT_TRUE(EvalText("'hello' LIKE 'h_llo'").AsBool());
  EXPECT_FALSE(EvalText("'hello' LIKE 'H%'").AsBool());
  EXPECT_TRUE(EvalText("'hello' NOT LIKE 'x%'").AsBool());
  EXPECT_TRUE(EvalText("'abc' LIKE '%'").AsBool());
  EXPECT_TRUE(EvalText("'' LIKE '%'").AsBool());
}

TEST_F(EvalTest, StringFunctions) {
  EXPECT_EQ(EvalText("LOWER('ABC')").AsString(), "abc");
  EXPECT_EQ(EvalText("UPPER('abc')").AsString(), "ABC");
  EXPECT_DOUBLE_EQ(EvalText("LENGTH('abcd')").AsNumber(), 4.0);
  EXPECT_EQ(EvalText("SUBSTR('hello', 1, 3)").AsString(), "ell");
  EXPECT_EQ(EvalText("'a' || 'b'").AsString(), "ab");
}

TEST_F(EvalTest, AnyEverySatisfies) {
  BindDoc(R"({"scores":[3, 9, 5]})");
  EXPECT_TRUE(EvalText("ANY s IN scores SATISFIES s > 8 END").AsBool());
  EXPECT_FALSE(EvalText("ANY s IN scores SATISFIES s > 10 END").AsBool());
  EXPECT_TRUE(EvalText("EVERY s IN scores SATISFIES s > 2 END").AsBool());
  EXPECT_FALSE(EvalText("EVERY s IN scores SATISFIES s > 4 END").AsBool());
}

TEST_F(EvalTest, ArrayComprehension) {
  BindDoc(R"({"items":[{"q":1},{"q":2},{"q":3}]})");
  Value v = EvalText("ARRAY i.q FOR i IN items WHEN i.q > 1 END");
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(v.At(0).AsNumber(), 2.0);
}

TEST_F(EvalTest, CaseWhen) {
  BindDoc(R"({"n":5})");
  EXPECT_EQ(EvalText("CASE WHEN n > 3 THEN 'big' ELSE 'small' END").AsString(),
            "big");
  EXPECT_EQ(EvalText("CASE WHEN n > 9 THEN 'big' END").type(),
            json::Type::kNull);
}

TEST_F(EvalTest, Parameters) {
  params_ = {Value::Int(42), Value::Str("x")};
  EXPECT_DOUBLE_EQ(EvalText("$1").AsNumber(), 42.0);
  EXPECT_EQ(EvalText("$2").AsString(), "x");
  auto expr = ParseExpression("$3").value();
  EvalContext ctx;
  ctx.params = &params_;
  EXPECT_FALSE(Eval(*expr, ctx).ok());  // out of range
}

TEST_F(EvalTest, ObjectAndArrayLiterals) {
  Value v = EvalText("{\"a\": 1 + 1, \"b\": [1, 'x']}");
  EXPECT_DOUBLE_EQ(v.Field("a").AsNumber(), 2.0);
  EXPECT_EQ(v.Field("b").At(1).AsString(), "x");
}

TEST_F(EvalTest, ConditionalFunctions) {
  BindDoc(R"({"a":1})");
  EXPECT_DOUBLE_EQ(EvalText("IFMISSING(nope, 7)").AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(EvalText("IFNULL(NULL, 3)").AsNumber(), 3.0);
  EXPECT_EQ(EvalText("TYPE([1])").AsString(), "array");
}

}  // namespace
}  // namespace couchkv::n1ql
