// Failover torture: the HealthMonitor detects FaultyTransport-induced
// failures through its own transport-routed heartbeats — NO test here calls
// Failover() on a live fault or touches set_healthy(); topology changes only
// because the detector, quorum, and orchestrator machinery decided them.
// Scenarios: partition -> auto-failover with zero replicate-acked writes
// lost; flapping and one-way links -> zero failovers; orchestrator death ->
// re-election; heal + RecoverNode -> full convergence; same-seed
// determinism.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "cluster/cluster.h"
#include "cluster/health_monitor.h"
#include "harness/torture.h"
#include "net/faulty_transport.h"
#include "stats/registry.h"

namespace couchkv {
namespace {

using cluster::HealthMonitor;
using cluster::HealthMonitorOptions;
using cluster::NodeId;
using cluster::PeerHealth;

uint64_t ClusterCounter(const char* name) {
  return stats::Registry::Global().GetScope("cluster")->GetCounter(name)
      ->Value();
}

// Polls until `pred` holds or `timeout_ms` of wall clock passed.
bool WaitUntil(const std::function<bool()>& pred, uint64_t timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

class TortureFailoverTest : public ::testing::TestWithParam<uint64_t> {};

// A node partitioned away mid-workload is confirmed down by heartbeat
// quorum and failed over by the monitor's own orchestrator, within the
// configured timeout (plus scheduling slack), losing no replicate-acked
// write.
TEST_P(TortureFailoverTest, AutoFailoverDuringTrafficLosesNoDurableWrite) {
  const uint64_t seed = GetParam();
  cluster::Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());

  net::FaultyTransport transport(seed);
  cluster.set_transport(&transport);

  HealthMonitorOptions hm;
  hm.heartbeat_interval_ms = 10;
  hm.auto_failover_timeout_ms = 250;
  hm.max_auto_failovers = 1;
  HealthMonitor monitor(&cluster, hm);

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 4;
  opts.ops_per_client = 100;
  opts.keys_per_client = 20;
  opts.persist_every = 0;
  opts.durable_every = 4;  // every 4th write needs replicate_to+persist_to=1
  opts.durability_timeout_ms = 300;
  harness::TortureDriver driver(&cluster, "default", opts);
  driver.NoteFailover();  // the floor for this test is replicate-acked

  const uint64_t auto_before = ClusterCounter("failover.auto_total");
  const NodeId victim = 2;

  monitor.Start();
  std::thread workload([&] { driver.Run(); });
  // Let some clean traffic through, then cut the victim off completely
  // (node links AND client links — no ack can land on it afterwards).
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto cut = std::chrono::steady_clock::now();
  transport.IsolateNode(victim);

  bool failed_over = WaitUntil([&] { return cluster.failed_over(victim); },
                               /*timeout_ms=*/8000);
  const auto detected = std::chrono::steady_clock::now();
  workload.join();
  monitor.Stop();

  ASSERT_TRUE(failed_over) << "monitor never failed the partitioned node over";
  // Detection cannot beat the timeout; it should not lag it by much more
  // than a few heartbeat rounds either. The bound is generous because
  // sanitizer builds run the pinger an order of magnitude slower.
  const auto took =
      std::chrono::duration_cast<std::chrono::milliseconds>(detected - cut);
  // The last successful ping can predate the cut by up to one heartbeat
  // round, so detection may land that much before cut + timeout.
  EXPECT_GE(took.count() + 3 * static_cast<int64_t>(hm.heartbeat_interval_ms),
            static_cast<int64_t>(hm.auto_failover_timeout_ms));
  EXPECT_LE(took.count(), 5000);
  EXPECT_EQ(ClusterCounter("failover.auto_total"), auto_before + 1);
  EXPECT_EQ(monitor.failovers_executed(), 1);
  EXPECT_GT(transport.stats().blocked, 0u);
  // The failed-over node must be fully out of the published map.
  auto m = cluster.map("default");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->CountActive(victim), 0u);

  driver.Settle();
  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
  cluster.set_transport(nullptr);
}

// A link that drops out and recovers before the timeout — over and over —
// must never mature to confirmed_down; a one-way link gives only one
// observer a confirmed opinion, which can never reach quorum. Either way:
// zero failovers. ManualClock makes the aging exact.
TEST_P(TortureFailoverTest, FlappingAndOneWayLinksProduceZeroFailovers) {
  const uint64_t seed = GetParam();
  ManualClock clock(1'000'000'000ULL);
  cluster::ClusterOptions copts;
  copts.clock = &clock;
  cluster::Cluster cluster(copts);
  for (int i = 0; i < 4; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());

  net::FaultyTransport transport(seed);
  cluster.set_transport(&transport);

  HealthMonitorOptions hm;
  hm.auto_failover_timeout_ms = 200;
  hm.max_auto_failovers = 4;  // permissive: the detector must not even ask
  HealthMonitor monitor(&cluster, hm);

  const uint64_t auto_before = ClusterCounter("failover.auto_total");
  const uint64_t vetoed_before = ClusterCounter("failover.vetoed");
  const uint64_t version_before = cluster.map("default")->version;

  // Flapping: 150ms of outage, then one good ping, ten times over. The
  // successful ping re-arms the grace period every cycle.
  for (int cycle = 0; cycle < 10; ++cycle) {
    transport.IsolateNode(2);
    for (int i = 0; i < 3; ++i) {
      monitor.TickOnce();
      clock.AdvanceMillis(50);
    }
    EXPECT_EQ(monitor.Opinion(0, 2), PeerHealth::kSuspect);
    transport.HealNode(2);
    monitor.TickOnce();
    EXPECT_EQ(monitor.Opinion(0, 2), PeerHealth::kHealthy);
  }
  // One-way link: 0 can't talk to 2 (and 2's replies to 0 die on the same
  // directed link). Both ends may confirm each other down; neither opinion
  // can reach a 3-of-4 quorum.
  transport.Block(net::Endpoint::Node(0), net::Endpoint::Node(2));
  for (int i = 0; i < 10; ++i) {
    monitor.TickOnce();
    clock.AdvanceMillis(100);
  }
  EXPECT_EQ(monitor.Opinion(0, 2), PeerHealth::kConfirmedDown);
  EXPECT_EQ(monitor.Opinion(1, 2), PeerHealth::kHealthy);

  EXPECT_EQ(ClusterCounter("failover.auto_total"), auto_before);
  EXPECT_EQ(ClusterCounter("failover.vetoed"), vetoed_before);
  EXPECT_EQ(monitor.failovers_executed(), 0);
  EXPECT_FALSE(cluster.failed_over(0));
  EXPECT_FALSE(cluster.failed_over(2));
  // No failover means no map surgery at all.
  EXPECT_EQ(cluster.map("default")->version, version_before);
  cluster.set_transport(nullptr);
}

// When the orchestrator (lowest-id member) itself is the dead node, the
// next-lowest healthy member must take over orchestration and execute the
// failover — and the cluster keeps serving afterwards.
TEST_P(TortureFailoverTest, OrchestratorDeathTriggersReelectionAndFailover) {
  const uint64_t seed = GetParam();
  ManualClock clock(1'000'000'000ULL);
  cluster::ClusterOptions copts;
  copts.clock = &clock;
  cluster::Cluster cluster(copts);
  for (int i = 0; i < 4; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());

  net::FaultyTransport transport(seed);
  cluster.set_transport(&transport);

  client::SmartClient client(&cluster, "default", {}, 900);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        client.Upsert("pre-" + std::to_string(i), "\"v\"").ok());
  }
  cluster.Quiesce();

  HealthMonitorOptions hm;
  hm.auto_failover_timeout_ms = 200;
  HealthMonitor monitor(&cluster, hm);

  ASSERT_EQ(cluster.orchestrator(), 0u);
  transport.IsolateNode(0);
  for (int i = 0; i < 5 && !cluster.failed_over(0); ++i) {
    monitor.TickOnce();
    clock.AdvanceMillis(100);
  }
  EXPECT_TRUE(cluster.failed_over(0));
  EXPECT_EQ(monitor.failovers_executed(), 1);
  // Node 1 is the new orchestrator, and the data service still works: every
  // partition has a live active (promotions replaced node 0 everywhere).
  EXPECT_EQ(cluster.orchestrator(), 1u);
  auto m = cluster.map("default");
  EXPECT_EQ(m->CountActive(0), 0u);
  for (int i = 0; i < 32; ++i) {
    std::string key = "post-" + std::to_string(i);
    ASSERT_TRUE(client.Upsert(key, "\"w\"").ok()) << key;
    ASSERT_TRUE(client.Get(key).ok()) << key;
  }
  // Drain replication of the post-failover writes before the transport goes
  // out of scope: a DCP pump caught mid-Call must not outlive it.
  cluster.Quiesce();
  cluster.set_transport(nullptr);
}

// After the partition heals, RecoverNode() reintegrates the failed-over
// node by delta: divergent vBuckets roll back, the rest catch up via DCP,
// and a rebalance hands actives back. The cluster fully converges.
TEST_P(TortureFailoverTest, PartitionHealThenRecoverNodeConverges) {
  const uint64_t seed = GetParam();
  cluster::Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());

  net::FaultyTransport transport(seed);
  cluster.set_transport(&transport);

  HealthMonitorOptions hm;
  hm.heartbeat_interval_ms = 10;
  hm.auto_failover_timeout_ms = 150;
  HealthMonitor monitor(&cluster, hm);

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 3;
  opts.ops_per_client = 90;
  opts.keys_per_client = 18;
  opts.persist_every = 0;
  opts.durable_every = 5;
  opts.durability_timeout_ms = 300;
  harness::TortureDriver driver(&cluster, "default", opts);
  driver.NoteFailover();

  const uint64_t recoveries_before = ClusterCounter("recovery.delta_total");
  const NodeId victim = 3;

  monitor.Start();
  std::thread workload([&] { driver.Run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  transport.IsolateNode(victim);
  ASSERT_TRUE(WaitUntil([&] { return cluster.failed_over(victim); },
                        /*timeout_ms=*/8000));
  workload.join();
  monitor.Stop();

  // Heal and reintegrate. Recovery streams the delta from the current
  // actives; the victim's divergent partitions (writes it took after the
  // isolate but before clients noticed) roll back first.
  transport.HealAll();
  ASSERT_TRUE(cluster.RecoverNode(victim).ok());
  EXPECT_FALSE(cluster.failed_over(victim));
  EXPECT_EQ(ClusterCounter("recovery.delta_total"), recoveries_before + 1);

  driver.Settle();
  // The node is a full member again: the rebalance gave it actives back.
  auto m = cluster.map("default");
  ASSERT_NE(m, nullptr);
  EXPECT_GT(m->CountActive(victim), 0u);
  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
  cluster.set_transport(nullptr);
}

// The whole detect -> quorum -> failover -> recover cycle is a function of
// the seed: two runs produce byte-identical final KV state.
TEST_P(TortureFailoverTest, SameSeedSameFailoverAndRecoveryState) {
  const uint64_t seed = GetParam();
  auto run_once = [&]() -> uint64_t {
    ManualClock clock(1'000'000'000ULL);
    cluster::ClusterOptions copts;
    copts.clock = &clock;
    cluster::Cluster cluster(copts);
    for (int i = 0; i < 4; ++i) cluster.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    EXPECT_TRUE(cluster.CreateBucket(cfg).ok());

    net::FaultyTransport transport(seed);
    cluster.set_transport(&transport);

    // Phase 1: clean-network workload, fully settled. Block-only faults
    // later consume no RNG draws, so the fault schedule cannot diverge.
    harness::TortureOptions opts;
    opts.seed = seed;
    opts.num_clients = 3;
    opts.ops_per_client = 60;
    opts.keys_per_client = 12;
    opts.persist_every = 0;
    opts.durable_every = 0;
    harness::TortureDriver driver(&cluster, "default", opts);
    driver.Run();
    driver.Settle();

    // Phase 2: partition -> heartbeat confirmation -> auto-failover, with
    // no concurrent traffic (the workload already finished), so which tick
    // fires the failover is exact.
    HealthMonitorOptions hm;
    hm.auto_failover_timeout_ms = 100;
    HealthMonitor monitor(&cluster, hm);
    transport.IsolateNode(1);
    for (int i = 0; i < 5 && !cluster.failed_over(1); ++i) {
      monitor.TickOnce();
      clock.AdvanceMillis(60);
    }
    EXPECT_TRUE(cluster.failed_over(1));

    // Phase 3: heal, delta-recover, settle, fingerprint.
    transport.HealAll();
    EXPECT_TRUE(cluster.RecoverNode(1).ok());
    driver.Settle();
    uint64_t fp = driver.StateFingerprint();
    cluster.set_transport(nullptr);
    return fp;
  };
  uint64_t first = run_once();
  uint64_t second = run_once();
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureFailoverTest,
                         ::testing::Values(11, 4242, 0xdecafbad),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace couchkv
