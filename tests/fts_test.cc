// Tests for the full-text search service (paper §6.1.3): analyzer,
// inverted index maintenance, term/prefix/phrase queries, tf-idf ranking,
// DCP feeding, consistency, topology changes.
#include <gtest/gtest.h>

#include "client/smart_client.h"
#include "fts/fts.h"

namespace couchkv::fts {
namespace {

TEST(AnalyzeTest, LowercasesAndSplits) {
  auto terms = Analyze("Hello, World! C++20 rocks");
  EXPECT_EQ(terms,
            (std::vector<std::string>{"hello", "world", "c", "20", "rocks"}));
}

TEST(AnalyzeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Analyze("").empty());
  EXPECT_TRUE(Analyze("!!! ---").empty());
}

TEST(ExtractTextTest, AllStringFieldsByDefault) {
  auto doc = json::Parse(
      R"({"title":"Couch","nested":{"body":"deep text"},"n":5,
          "tags":["red","blue"]})").value();
  std::string text = ExtractText(doc, {});
  EXPECT_NE(text.find("Couch"), std::string::npos);
  EXPECT_NE(text.find("deep text"), std::string::npos);
  EXPECT_NE(text.find("red"), std::string::npos);
}

TEST(ExtractTextTest, RestrictedFields) {
  auto doc = json::Parse(
      R"({"title":"Alpha","body":"Beta","secret":"Gamma"})").value();
  std::string text = ExtractText(doc, {"title", "body"});
  EXPECT_NE(text.find("Alpha"), std::string::npos);
  EXPECT_NE(text.find("Beta"), std::string::npos);
  EXPECT_EQ(text.find("Gamma"), std::string::npos);
}

kv::Mutation Mut(const std::string& key, const std::string& doc,
                 uint64_t seqno, bool deleted = false) {
  kv::Mutation m;
  m.vbucket = 0;
  m.doc.key = key;
  m.doc.value = doc;
  m.doc.meta.seqno = seqno;
  m.doc.meta.deleted = deleted;
  return m;
}

class InvertedIndexTest : public ::testing::Test {
 protected:
  InvertedIndexTest() : index_(FtsIndexDefinition{"i", "b", {}}) {}
  InvertedIndex index_;
};

TEST_F(InvertedIndexTest, TermSearch) {
  index_.ApplyMutation(Mut("d1", R"({"t":"the quick brown fox"})", 1));
  index_.ApplyMutation(Mut("d2", R"({"t":"lazy brown dog"})", 2));
  auto hits = index_.Search("brown", QueryMode::kAllTerms, 10);
  EXPECT_EQ(hits.size(), 2u);
  hits = index_.Search("fox", QueryMode::kAllTerms, 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc_id, "d1");
  EXPECT_TRUE(index_.Search("cat", QueryMode::kAllTerms, 10).empty());
}

TEST_F(InvertedIndexTest, AllTermsVsAnyTerm) {
  index_.ApplyMutation(Mut("d1", R"({"t":"alpha beta"})", 1));
  index_.ApplyMutation(Mut("d2", R"({"t":"alpha gamma"})", 2));
  EXPECT_EQ(index_.Search("alpha beta", QueryMode::kAllTerms, 10).size(), 1u);
  EXPECT_EQ(index_.Search("alpha beta", QueryMode::kAnyTerm, 10).size(), 2u);
}

TEST_F(InvertedIndexTest, PrefixSearch) {
  index_.ApplyMutation(Mut("d1", R"({"t":"connect"})", 1));
  index_.ApplyMutation(Mut("d2", R"({"t":"connection"})", 2));
  index_.ApplyMutation(Mut("d3", R"({"t":"consistent"})", 3));
  EXPECT_EQ(index_.Search("connect*", QueryMode::kAllTerms, 10).size(), 2u);
  EXPECT_EQ(index_.Search("con*", QueryMode::kAllTerms, 10).size(), 3u);
}

TEST_F(InvertedIndexTest, PhraseSearch) {
  index_.ApplyMutation(Mut("d1", R"({"t":"new york city"})", 1));
  index_.ApplyMutation(Mut("d2", R"({"t":"york has a new city hall"})", 2));
  auto hits = index_.Search("new york", QueryMode::kPhrase, 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc_id, "d1");
  // Both match as AND though.
  EXPECT_EQ(index_.Search("new york", QueryMode::kAllTerms, 10).size(), 2u);
}

TEST_F(InvertedIndexTest, UpdateReplacesPostings) {
  index_.ApplyMutation(Mut("d1", R"({"t":"original words"})", 1));
  index_.ApplyMutation(Mut("d1", R"({"t":"replacement text"})", 2));
  EXPECT_TRUE(index_.Search("original", QueryMode::kAllTerms, 10).empty());
  EXPECT_EQ(index_.Search("replacement", QueryMode::kAllTerms, 10).size(), 1u);
  EXPECT_EQ(index_.num_docs(), 1u);
}

TEST_F(InvertedIndexTest, DeleteRemovesDoc) {
  index_.ApplyMutation(Mut("d1", R"({"t":"ephemeral"})", 1));
  index_.ApplyMutation(Mut("d1", "", 2, /*deleted=*/true));
  EXPECT_TRUE(index_.Search("ephemeral", QueryMode::kAllTerms, 10).empty());
  EXPECT_EQ(index_.num_docs(), 0u);
  EXPECT_EQ(index_.num_terms(), 0u);
}

TEST_F(InvertedIndexTest, RareTermsScoreHigher) {
  // "common" appears everywhere; "rare" once. A doc matching the rare term
  // should outrank one matching only common terms in an OR query.
  for (int i = 0; i < 20; ++i) {
    index_.ApplyMutation(
        Mut("common" + std::to_string(i), R"({"t":"common filler"})",
            static_cast<uint64_t>(i + 1)));
  }
  index_.ApplyMutation(Mut("special", R"({"t":"rare common"})", 100));
  auto hits = index_.Search("rare common", QueryMode::kAnyTerm, 5);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_id, "special");
}

class SearchServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) cluster_.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    service_ = std::make_shared<SearchService>(&cluster_);
    service_->Attach();
    client_ = std::make_unique<client::SmartClient>(&cluster_, "default");
  }

  cluster::Cluster cluster_;
  std::shared_ptr<SearchService> service_;
  std::unique_ptr<client::SmartClient> client_;
};

TEST_F(SearchServiceTest, EndToEndSearch) {
  ASSERT_TRUE(client_
                  ->Upsert("review::1",
                           R"({"text":"The couch was comfortable and stylish"})")
                  .ok());
  ASSERT_TRUE(client_
                  ->Upsert("review::2",
                           R"({"text":"Terrible couch, springs poking out"})")
                  .ok());
  ASSERT_TRUE(
      client_->Upsert("review::3", R"({"text":"Lovely desk lamp"})").ok());
  FtsIndexDefinition def;
  def.name = "reviews";
  def.bucket = "default";
  ASSERT_TRUE(service_->CreateIndex(def).ok());

  auto hits = service_->Search("default", "reviews", "couch",
                               QueryMode::kAllTerms, 10, /*consistent=*/true);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), 2u);

  // Writes after index creation are searchable too (DCP-fed).
  ASSERT_TRUE(
      client_->Upsert("review::4", R"({"text":"another couch story"})").ok());
  hits = service_->Search("default", "reviews", "couch",
                          QueryMode::kAllTerms, 10, true);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 3u);
}

TEST_F(SearchServiceTest, FieldRestrictedIndex) {
  ASSERT_TRUE(client_
                  ->Upsert("doc::1",
                           R"({"title":"findable","internal":"hidden"})")
                  .ok());
  FtsIndexDefinition def;
  def.name = "titles";
  def.bucket = "default";
  def.fields = {"title"};
  ASSERT_TRUE(service_->CreateIndex(def).ok());
  EXPECT_EQ(service_
                ->Search("default", "titles", "findable",
                         QueryMode::kAllTerms, 10, true)
                ->size(),
            1u);
  EXPECT_TRUE(service_
                  ->Search("default", "titles", "hidden",
                           QueryMode::kAllTerms, 10, true)
                  ->empty());
}

TEST_F(SearchServiceTest, SurvivesRebalance) {
  FtsIndexDefinition def;
  def.name = "all";
  def.bucket = "default";
  ASSERT_TRUE(service_->CreateIndex(def).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("doc" + std::to_string(i),
                             R"({"text":"searchable payload )" +
                                 std::to_string(i) + "\"}")
                    .ok());
  }
  cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  auto hits = service_->Search("default", "all", "searchable",
                               QueryMode::kAllTerms, 100, true);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), 50u);
}

TEST_F(SearchServiceTest, DropIndex) {
  FtsIndexDefinition def;
  def.name = "tmp";
  def.bucket = "default";
  ASSERT_TRUE(service_->CreateIndex(def).ok());
  ASSERT_TRUE(service_->DropIndex("default", "tmp").ok());
  EXPECT_FALSE(service_->Search("default", "tmp", "x").ok());
}

}  // namespace
}  // namespace couchkv::fts
