// Unit + property tests for the JSON document model: parsing, serialization,
// path navigation, and the N1QL collation order.
#include <gtest/gtest.h>

#include "common/random.h"
#include "json/value.h"

namespace couchkv::json {
namespace {

TEST(JsonValueTest, DefaultIsMissing) {
  Value v;
  EXPECT_TRUE(v.is_missing());
  EXPECT_FALSE(v.Truthy());
}

TEST(JsonValueTest, Constructors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_DOUBLE_EQ(Value::Number(3.5).AsNumber(), 3.5);
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_EQ(Value::Str("hi").AsString(), "hi");
  EXPECT_TRUE(Value::MakeArray().is_array());
  EXPECT_TRUE(Value::MakeObject().is_object());
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("3.25")->AsNumber(), 3.25);
  EXPECT_DOUBLE_EQ(Parse("-17")->AsNumber(), -17.0);
  EXPECT_DOUBLE_EQ(Parse("1e3")->AsNumber(), 1000.0);
  EXPECT_EQ(Parse("\"abc\"")->AsString(), "abc");
}

TEST(JsonParseTest, NestedStructure) {
  auto v = Parse(R"({"name":"Dipti","tags":["a","b"],"addr":{"city":"SF"}})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Field("name").AsString(), "Dipti");
  EXPECT_EQ(v->Field("tags").AsArray().size(), 2u);
  EXPECT_EQ(v->Field("addr").Field("city").AsString(), "SF");
}

TEST(JsonParseTest, StringEscapes) {
  auto v = Parse(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\"b\\c\ndA");
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto v = Parse("  {  \"a\" :\n[ 1 , 2 ]\t}  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Field("a").At(1).AsInt(), 2);
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":}").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
}

TEST(JsonParseTest, DeepNestingRejected) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonSerializeTest, RoundTrip) {
  const char* docs[] = {
      R"({"a":1,"b":[true,null,"x"],"c":{"d":2.5}})",
      R"([])",
      R"({})",
      R"([1,2,3])",
      R"("plain")",
  };
  for (const char* doc : docs) {
    auto v1 = Parse(doc);
    ASSERT_TRUE(v1.ok()) << doc;
    auto v2 = Parse(v1->ToJson());
    ASSERT_TRUE(v2.ok()) << v1->ToJson();
    EXPECT_EQ(Value::Compare(*v1, *v2), 0) << doc;
  }
}

TEST(JsonSerializeTest, IntegersPrintWithoutDecimal) {
  EXPECT_EQ(Value::Int(42).ToJson(), "42");
  EXPECT_EQ(Value::Number(2.5).ToJson(), "2.5");
}

TEST(JsonPathTest, GetPath) {
  auto v = Parse(R"({"a":{"b":[{"c":1},{"c":2}]}})").value();
  EXPECT_EQ(v.GetPath("a.b[1].c").AsInt(), 2);
  EXPECT_EQ(v.GetPath("a.b[0].c").AsInt(), 1);
  EXPECT_TRUE(v.GetPath("a.x").is_missing());
  EXPECT_TRUE(v.GetPath("a.b[9].c").is_missing());
  EXPECT_TRUE(v.GetPath("a.b[0].c.d").is_missing());
}

TEST(JsonPathTest, SetPathCreatesIntermediates) {
  Value v = Value::MakeObject();
  EXPECT_TRUE(v.SetPath("a.b.c", Value::Int(5)));
  EXPECT_EQ(v.GetPath("a.b.c").AsInt(), 5);
  // Overwrite.
  EXPECT_TRUE(v.SetPath("a.b.c", Value::Str("x")));
  EXPECT_EQ(v.GetPath("a.b.c").AsString(), "x");
}

TEST(JsonPathTest, SetPathIntoArrayElement) {
  auto v = Parse(R"({"items":[{"q":1},{"q":2}]})").value();
  EXPECT_TRUE(v.SetPath("items[1].q", Value::Int(9)));
  EXPECT_EQ(v.GetPath("items[1].q").AsInt(), 9);
  EXPECT_FALSE(v.SetPath("items[5].q", Value::Int(1)));  // out of range
}

TEST(JsonPathTest, RemovePath) {
  auto v = Parse(R"({"a":{"b":1,"c":2}})").value();
  EXPECT_TRUE(v.RemovePath("a.b"));
  EXPECT_TRUE(v.GetPath("a.b").is_missing());
  EXPECT_EQ(v.GetPath("a.c").AsInt(), 2);
  EXPECT_FALSE(v.RemovePath("a.zzz"));
}

TEST(JsonCollationTest, TypeOrder) {
  // missing < null < false < true < number < string < array < object
  std::vector<Value> order = {
      Value::Missing(),
      Value::Null(),
      Value::Bool(false),
      Value::Bool(true),
      Value::Number(-1e30),
      Value::Str(""),
      Value::MakeArray(),
      Value::MakeObject(),
  };
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(Value::Compare(order[i], order[i + 1]), 0)
        << "at index " << i;
  }
}

TEST(JsonCollationTest, NumbersAndStrings) {
  EXPECT_LT(Value::Compare(Value::Number(1), Value::Number(2)), 0);
  EXPECT_EQ(Value::Compare(Value::Number(2), Value::Number(2)), 0);
  EXPECT_LT(Value::Compare(Value::Str("abc"), Value::Str("abd")), 0);
}

TEST(JsonCollationTest, ArraysElementwiseThenLength) {
  auto a = Parse("[1,2]").value();
  auto b = Parse("[1,3]").value();
  auto c = Parse("[1,2,0]").value();
  EXPECT_LT(Value::Compare(a, b), 0);
  EXPECT_LT(Value::Compare(a, c), 0);
  EXPECT_LT(Value::Compare(c, b), 0);
}

TEST(JsonCollationTest, Truthiness) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Number(0).Truthy());
  EXPECT_FALSE(Value::Str("").Truthy());
  EXPECT_FALSE(Parse("[]")->Truthy());
  EXPECT_TRUE(Value::Number(0.1).Truthy());
  EXPECT_TRUE(Parse("[0]")->Truthy());
}

// Property test: Compare is a total order (antisymmetric + transitive on a
// random sample) and ToJson/Parse is the identity under Compare.
TEST(JsonPropertyTest, CompareIsConsistentAndRoundTripStable) {
  couchkv::Rng rng(99);
  auto random_value = [&](auto&& self, int depth) -> Value {
    switch (rng.Uniform(depth > 2 ? 5 : 7)) {
      case 0: return Value::Null();
      case 1: return Value::Bool(rng.OneIn(2));
      case 2: return Value::Number(static_cast<double>(rng.Uniform(1000)) / 4);
      case 3: return Value::Str(std::string(rng.Uniform(8), 'a' + rng.Uniform(26)));
      case 4: return Value::Int(static_cast<int64_t>(rng.Uniform(100)));
      case 5: {
        Value::Array arr;
        for (uint64_t i = 0; i < rng.Uniform(4); ++i) {
          arr.push_back(self(self, depth + 1));
        }
        return Value::MakeArray(std::move(arr));
      }
      default: {
        Value::Object obj;
        for (uint64_t i = 0; i < rng.Uniform(4); ++i) {
          obj["k" + std::to_string(rng.Uniform(10))] = self(self, depth + 1);
        }
        return Value::MakeObject(std::move(obj));
      }
    }
  };
  std::vector<Value> samples;
  for (int i = 0; i < 60; ++i) samples.push_back(random_value(random_value, 0));
  for (const Value& a : samples) {
    auto round = Parse(a.ToJson());
    ASSERT_TRUE(round.ok()) << a.ToJson();
    EXPECT_EQ(Value::Compare(a, *round), 0) << a.ToJson();
    for (const Value& b : samples) {
      EXPECT_EQ(Value::Compare(a, b), -Value::Compare(b, a));
      for (const Value& c : samples) {
        if (Value::Compare(a, b) <= 0 && Value::Compare(b, c) <= 0) {
          EXPECT_LE(Value::Compare(a, c), 0);
        }
      }
    }
  }
}

TEST(JsonMemoryTest, FootprintGrowsWithContent) {
  Value small = Value::Str("x");
  Value big = Value::Str(std::string(10000, 'x'));
  EXPECT_GT(big.MemoryFootprint(), small.MemoryFootprint() + 9000);
}

}  // namespace
}  // namespace couchkv::json
