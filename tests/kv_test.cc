// Unit tests for the object-managed cache: CAS semantics, GETL locks, TTL,
// eviction, seqno generation, memory accounting.
#include <array>
#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "kv/hash_table.h"

namespace couchkv::kv {
namespace {

class HashTableTest : public ::testing::Test {
 protected:
  ManualClock clock_{1'000'000'000};  // start at t=1s
  HashTable ht_{&clock_};
};

TEST_F(HashTableTest, GetMissing) {
  EXPECT_TRUE(ht_.Get("nope").status().IsNotFound());
}

TEST_F(HashTableTest, SetThenGet) {
  auto meta = ht_.Set("k", "{\"v\":1}", 0, 0, 0);
  ASSERT_TRUE(meta.ok());
  EXPECT_GT(meta->cas, 0u);
  EXPECT_EQ(meta->seqno, 1u);
  EXPECT_EQ(meta->revno, 1u);

  auto r = ht_.Get("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.value, "{\"v\":1}");
  EXPECT_EQ(r->doc.meta.cas, meta->cas);
  EXPECT_TRUE(r->resident);
}

TEST_F(HashTableTest, SeqnosMonotonic) {
  uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    auto meta = ht_.Set("k" + std::to_string(i % 7), "v", 0, 0, 0);
    ASSERT_TRUE(meta.ok());
    EXPECT_GT(meta->seqno, prev);
    prev = meta->seqno;
  }
  EXPECT_EQ(ht_.high_seqno(), 100u);
}

TEST_F(HashTableTest, CasMatchSucceeds) {
  auto m1 = ht_.Set("k", "v1", 0, 0, 0);
  auto m2 = ht_.Set("k", "v2", 0, 0, m1->cas);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(ht_.Get("k")->doc.value, "v2");
  EXPECT_EQ(m2->revno, 2u);
}

TEST_F(HashTableTest, CasMismatchFails) {
  // The paper's optimistic-locking flow (§3.1.1): a concurrent mutation
  // bumps the CAS, so the original client's conditional update fails.
  auto m1 = ht_.Set("k", "v1", 0, 0, 0);
  ASSERT_TRUE(ht_.Set("k", "v2", 0, 0, 0).ok());  // concurrent writer
  auto r = ht_.Set("k", "v3", 0, 0, m1->cas);
  EXPECT_TRUE(r.status().IsKeyExists());
  EXPECT_EQ(ht_.Get("k")->doc.value, "v2");
  EXPECT_EQ(ht_.stats().num_cas_mismatch, 1u);
  // Re-read and re-submit with the fresh CAS succeeds.
  auto fresh = ht_.Get("k");
  EXPECT_TRUE(ht_.Set("k", "v3", 0, 0, fresh->doc.meta.cas).ok());
}

TEST_F(HashTableTest, CasOnMissingKeyIsNotFound) {
  EXPECT_TRUE(ht_.Set("nope", "v", 0, 0, 12345).status().IsNotFound());
}

TEST_F(HashTableTest, AddOnlyInsertsOnce) {
  EXPECT_TRUE(ht_.Add("k", "v1", 0, 0).ok());
  EXPECT_TRUE(ht_.Add("k", "v2", 0, 0).status().IsKeyExists());
}

TEST_F(HashTableTest, AddSucceedsAfterDelete) {
  ASSERT_TRUE(ht_.Add("k", "v1", 0, 0).ok());
  ASSERT_TRUE(ht_.Remove("k", 0).ok());
  EXPECT_TRUE(ht_.Add("k", "v2", 0, 0).ok());
}

TEST_F(HashTableTest, ReplaceRequiresExistence) {
  EXPECT_TRUE(ht_.Replace("k", "v", 0, 0, 0).status().IsNotFound());
  ASSERT_TRUE(ht_.Set("k", "v1", 0, 0, 0).ok());
  EXPECT_TRUE(ht_.Replace("k", "v2", 0, 0, 0).ok());
  EXPECT_EQ(ht_.Get("k")->doc.value, "v2");
}

TEST_F(HashTableTest, RemoveLeavesTombstoneWithSeqno) {
  ASSERT_TRUE(ht_.Set("k", "v", 0, 0, 0).ok());
  auto meta = ht_.Remove("k", 0);
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->deleted);
  EXPECT_EQ(meta->seqno, 2u);
  EXPECT_TRUE(ht_.Get("k").status().IsNotFound());
  EXPECT_EQ(ht_.stats().num_tombstones, 1u);
}

TEST_F(HashTableTest, RemoveMissingIsNotFound) {
  EXPECT_TRUE(ht_.Remove("k", 0).status().IsNotFound());
}

TEST_F(HashTableTest, RemoveWithStaleCasFails) {
  auto m1 = ht_.Set("k", "v1", 0, 0, 0);
  ASSERT_TRUE(ht_.Set("k", "v2", 0, 0, 0).ok());
  EXPECT_TRUE(ht_.Remove("k", m1->cas).status().IsKeyExists());
}

// --- GETL hard locks (§3.1.1) ---

TEST_F(HashTableTest, LockBlocksForeignWrites) {
  ASSERT_TRUE(ht_.Set("k", "v", 0, 0, 0).ok());
  auto locked = ht_.GetAndLock("k", 15000);
  ASSERT_TRUE(locked.ok());
  // A writer without the lock CAS is refused.
  EXPECT_TRUE(ht_.Set("k", "other", 0, 0, 0).status().IsLocked());
  // The lock holder can write using the returned CAS.
  EXPECT_TRUE(ht_.Set("k", "mine", 0, 0, locked->doc.meta.cas).ok());
  EXPECT_EQ(ht_.Get("k")->doc.value, "mine");
  // The mutation released the lock.
  EXPECT_TRUE(ht_.Set("k", "again", 0, 0, 0).ok());
}

TEST_F(HashTableTest, LockExpiresAfterTimeout) {
  // "This lock will be released after a certain timeout to avoid
  // deadlocks" (§3.1.1).
  ASSERT_TRUE(ht_.Set("k", "v", 0, 0, 0).ok());
  ASSERT_TRUE(ht_.GetAndLock("k", 15000).ok());
  EXPECT_TRUE(ht_.Set("k", "x", 0, 0, 0).status().IsLocked());
  clock_.AdvanceMillis(15001);
  EXPECT_TRUE(ht_.Set("k", "x", 0, 0, 0).ok());
}

TEST_F(HashTableTest, DoubleLockRefused) {
  ASSERT_TRUE(ht_.Set("k", "v", 0, 0, 0).ok());
  ASSERT_TRUE(ht_.GetAndLock("k", 15000).ok());
  EXPECT_TRUE(ht_.GetAndLock("k", 15000).status().IsLocked());
}

TEST_F(HashTableTest, UnlockRequiresLockCas) {
  ASSERT_TRUE(ht_.Set("k", "v", 0, 0, 0).ok());
  auto locked = ht_.GetAndLock("k", 15000);
  EXPECT_TRUE(ht_.Unlock("k", 1).IsLocked());
  EXPECT_TRUE(ht_.Unlock("k", locked->doc.meta.cas).ok());
  EXPECT_TRUE(ht_.Set("k", "x", 0, 0, 0).ok());
}

TEST_F(HashTableTest, LockInvalidatesOldCas) {
  auto m = ht_.Set("k", "v", 0, 0, 0);
  ASSERT_TRUE(ht_.GetAndLock("k", 15000).ok());
  // Pre-lock CAS no longer works even after expiry.
  clock_.AdvanceMillis(15001);
  EXPECT_TRUE(ht_.Set("k", "x", 0, 0, m->cas).status().IsKeyExists());
}

// --- TTL ---

TEST_F(HashTableTest, ExpiryHidesDocument) {
  uint32_t now = static_cast<uint32_t>(clock_.NowSeconds());
  ASSERT_TRUE(ht_.Set("k", "v", 0, now + 10, 0).ok());
  EXPECT_TRUE(ht_.Get("k").ok());
  clock_.AdvanceSeconds(11);
  EXPECT_TRUE(ht_.Get("k").status().IsNotFound());
}

TEST_F(HashTableTest, TouchExtendsExpiry) {
  uint32_t now = static_cast<uint32_t>(clock_.NowSeconds());
  ASSERT_TRUE(ht_.Set("k", "v", 0, now + 10, 0).ok());
  clock_.AdvanceSeconds(8);
  ASSERT_TRUE(
      ht_.Touch("k", static_cast<uint32_t>(clock_.NowSeconds()) + 10).ok());
  clock_.AdvanceSeconds(8);
  EXPECT_TRUE(ht_.Get("k").ok());
}

TEST_F(HashTableTest, SetOnExpiredKeyBehavesLikeInsert) {
  uint32_t now = static_cast<uint32_t>(clock_.NowSeconds());
  ASSERT_TRUE(ht_.Set("k", "v", 0, now + 1, 0).ok());
  clock_.AdvanceSeconds(2);
  EXPECT_TRUE(ht_.Add("k", "v2", 0, 0).ok());
}

TEST_F(HashTableTest, PurgeDropsExpiredAndOldTombstones) {
  uint32_t now = static_cast<uint32_t>(clock_.NowSeconds());
  ASSERT_TRUE(ht_.Set("expired", "v", 0, now + 1, 0).ok());
  ASSERT_TRUE(ht_.Set("deleted", "v", 0, 0, 0).ok());
  ASSERT_TRUE(ht_.Remove("deleted", 0).ok());
  ASSERT_TRUE(ht_.Set("live", "v", 0, 0, 0).ok());
  // Mark everything clean so purge may discard it.
  ht_.MarkClean("expired", 1);
  ht_.MarkClean("deleted", 3);
  ht_.MarkClean("live", 4);
  clock_.AdvanceSeconds(2);
  uint64_t purged = ht_.Purge(/*purge_before_seqno=*/100);
  EXPECT_EQ(purged, 2u);
  EXPECT_TRUE(ht_.Get("live").ok());
}

// --- Eviction / memory accounting ---

TEST_F(HashTableTest, EvictionKeepsMetadataByDefault) {
  for (int i = 0; i < 50; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(ht_.Set(key, std::string(1000, 'x'), 0, 0, 0).ok());
    ht_.MarkClean(key, static_cast<uint64_t>(i + 1));  // persisted
  }
  uint64_t before = ht_.mem_used();
  uint64_t reclaimed = ht_.EvictTo(0);
  EXPECT_GT(reclaimed, 0u);
  EXPECT_LT(ht_.mem_used(), before);
  auto s = ht_.stats();
  EXPECT_EQ(s.num_items, 50u);          // keys+metadata stay resident
  EXPECT_GT(s.num_non_resident, 0u);
  // A Get on an evicted key reports non-resident (read-through happens at
  // the VBucket layer).
  bool saw_nonresident = false;
  for (int i = 0; i < 50; ++i) {
    auto r = ht_.Get("k" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    if (!r->resident) saw_nonresident = true;
  }
  EXPECT_TRUE(saw_nonresident);
}

TEST_F(HashTableTest, DirtyValuesAreNotEvicted) {
  // Never persisted, so the value is dirty and pinned in memory.
  ASSERT_TRUE(ht_.Set("dirty", std::string(1000, 'x'), 0, 0, 0).ok());
  ht_.EvictTo(0);
  auto r = ht_.Get("dirty");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->resident);
}

TEST_F(HashTableTest, FullEvictionRemovesEntries) {
  HashTable full(&clock_, EvictionPolicy::kFull);
  for (int i = 0; i < 20; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(full.Set(key, std::string(500, 'y'), 0, 0, 0).ok());
    full.MarkClean(key, static_cast<uint64_t>(i + 1));
  }
  full.EvictTo(0);
  EXPECT_LT(full.stats().num_items, 20u);
}

TEST_F(HashTableTest, RestoreFillsNonResidentValue) {
  ASSERT_TRUE(ht_.Set("k", std::string(100, 'z'), 0, 0, 0).ok());
  ht_.MarkClean("k", 1);
  ht_.EvictTo(0);
  ht_.EvictTo(0);  // second pass clears reference bits then evicts
  auto r = ht_.Get("k");
  ASSERT_TRUE(r.ok());
  if (!r->resident) {
    Document doc = r->doc;
    doc.value = std::string(100, 'z');
    ht_.Restore(doc);
    auto r2 = ht_.Get("k");
    EXPECT_TRUE(r2->resident);
    EXPECT_EQ(r2->doc.value, std::string(100, 'z'));
  }
}

TEST_F(HashTableTest, MemAccountingReturnsToBaseline) {
  uint64_t base = ht_.mem_used();
  ASSERT_TRUE(ht_.Set("k", std::string(4096, 'a'), 0, 0, 0).ok());
  EXPECT_GT(ht_.mem_used(), base + 4000);
  ASSERT_TRUE(ht_.Remove("k", 0).ok());
  ht_.MarkClean("k", 2);
  ht_.Purge(100);
  EXPECT_EQ(ht_.mem_used(), base);
}

// --- Replication-side operations ---

TEST_F(HashTableTest, ApplyRemotePreservesMetadata) {
  Document doc;
  doc.key = "r";
  doc.value = "vvv";
  doc.meta.cas = 777;
  doc.meta.revno = 3;
  doc.meta.seqno = 42;
  ht_.ApplyRemote(doc);
  auto r = ht_.Get("r");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.meta.cas, 777u);
  EXPECT_EQ(r->doc.meta.revno, 3u);
  EXPECT_EQ(ht_.high_seqno(), 42u);
}

TEST_F(HashTableTest, MarkCleanAdvancesPersistedSeqno) {
  ASSERT_TRUE(ht_.Set("a", "1", 0, 0, 0).ok());
  ASSERT_TRUE(ht_.Set("b", "2", 0, 0, 0).ok());
  EXPECT_EQ(ht_.persisted_seqno(), 0u);
  ht_.MarkClean("a", 1);
  EXPECT_EQ(ht_.persisted_seqno(), 1u);
  ht_.MarkClean("b", 2);
  EXPECT_EQ(ht_.persisted_seqno(), 2u);
}

TEST_F(HashTableTest, ForEachSkipsTombstonesAndExpired) {
  uint32_t now = static_cast<uint32_t>(clock_.NowSeconds());
  ASSERT_TRUE(ht_.Set("live", "v", 0, 0, 0).ok());
  ASSERT_TRUE(ht_.Set("dead", "v", 0, 0, 0).ok());
  ASSERT_TRUE(ht_.Remove("dead", 0).ok());
  ASSERT_TRUE(ht_.Set("exp", "v", 0, now + 1, 0).ok());
  clock_.AdvanceSeconds(2);
  int count = 0;
  ht_.ForEach([&](const Document& doc, bool) {
    EXPECT_EQ(doc.key, "live");
    ++count;
  });
  EXPECT_EQ(count, 1);
}

// --- Concurrency (ctest label: kv) ---
//
// The hash table is the innermost shared structure in the data path; these
// tests hammer it from real threads so the TSan/ASan CI jobs exercise the
// lock discipline the annotations promise.

TEST_F(HashTableTest, GetlContentionSingleHolder) {
  // N threads race GETL on one key. The lock is a hard mutual exclusion:
  // at most one holder at a time, everyone else sees IsLocked (§3.1.1).
  ASSERT_TRUE(ht_.Set("k", "0", 0, 0, 0).ok());
  constexpr int kThreads = 8;
  constexpr int kAcquisitionsPerThread = 50;

  std::atomic<int> holders{0};
  std::atomic<int> total_acquired{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      int acquired = 0;
      while (acquired < kAcquisitionsPerThread) {
        auto locked = ht_.GetAndLock("k", 15000);
        if (!locked.ok()) {
          // The only acceptable contention outcome is "someone else holds
          // the lock"; anything else is a bug.
          if (!locked.status().IsLocked()) violation.store(true);
          std::this_thread::yield();
          continue;
        }
        if (holders.fetch_add(1) != 0) violation.store(true);
        // Critical section: mutate with the lock CAS (which releases) or
        // plain Unlock, alternating to cover both release paths.
        holders.fetch_sub(1);
        if (acquired % 2 == 0) {
          auto w = ht_.Set("k", std::to_string(t), 0, 0,
                           locked->doc.meta.cas);
          if (!w.ok()) violation.store(true);
        } else {
          if (!ht_.Unlock("k", locked->doc.meta.cas).ok()) {
            violation.store(true);
          }
        }
        ++acquired;
        total_acquired.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_FALSE(violation.load());
  EXPECT_EQ(total_acquired.load(), kThreads * kAcquisitionsPerThread);
  // All locks were released, so an outsider can lock and write again.
  auto final_lock = ht_.GetAndLock("k", 15000);
  ASSERT_TRUE(final_lock.ok());
  EXPECT_TRUE(ht_.Set("k", "done", 0, 0, final_lock->doc.meta.cas).ok());
  EXPECT_EQ(ht_.Get("k")->doc.value, "done");
}

TEST_F(HashTableTest, CasUnderConcurrentEviction) {
  // Optimistic writers (read-CAS-write loops) race a flusher/pager thread
  // that persists values to a shadow "disk" map and then evicts them.
  // Writers restore evicted values read-through style. Every CAS failure
  // must be one of the defined outcomes, every successful CAS must count
  // exactly once, and a restore must never resurrect a stale value
  // (Restore is seqno-checked, so a racing mutation wins).
  constexpr int kWriters = 4;
  constexpr int kIncrementsPerWriter = 50;
  constexpr int kKeys = 4;
  auto key_name = [](int k) { return "k" + std::to_string(k); };
  for (int k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(ht_.Set(key_name(k), "0", 0, 0, 0).ok());
  }

  // Shadow of what the flusher has persisted, keyed by document key. The
  // per-doc seqno decides whether a disk copy may be restored.
  std::mutex disk_mu;
  std::map<std::string, Document> disk;

  std::atomic<bool> stop_pager{false};
  std::atomic<bool> violation{false};

  std::thread pager([&] {
    while (!stop_pager.load()) {
      for (int k = 0; k < kKeys; ++k) {
        auto r = ht_.Get(key_name(k));
        if (!r.ok() || !r->resident) continue;
        // Persist-then-clean, as the real flusher does. MarkClean no-ops
        // if a writer raced past this seqno, so only values that made it
        // to "disk" ever become evictable.
        {
          std::lock_guard<std::mutex> lock(disk_mu);
          disk[r->doc.key] = r->doc;
        }
        ht_.MarkClean(r->doc.key, r->doc.meta.seqno);
      }
      ht_.EvictTo(0);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  std::array<std::atomic<int>, kKeys> per_key_increments{};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      int done = 0;
      while (done < kIncrementsPerWriter) {
        int ki = (w + done) % kKeys;
        std::string key = key_name(ki);
        auto r = ht_.Get(key);
        if (!r.ok()) {
          violation.store(true);
          break;
        }
        if (!r->resident) {
          // Read-through: page the persisted copy back in. The seqno guard
          // (ours and Restore's own) rejects stale disk copies.
          std::lock_guard<std::mutex> lock(disk_mu);
          auto it = disk.find(key);
          if (it != disk.end() &&
              it->second.meta.seqno == r->doc.meta.seqno) {
            ht_.Restore(it->second);
          }
          continue;
        }
        int cur = std::stoi(r->doc.value);
        auto s = ht_.Set(key, std::to_string(cur + 1), 0, 0,
                         r->doc.meta.cas);
        if (s.ok()) {
          per_key_increments[ki].fetch_add(1);
          ++done;
        } else if (!s.status().IsKeyExists() && !s.status().IsLocked() &&
                   !s.status().IsNotFound()) {
          violation.store(true);
          break;
        }
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : writers) th.join();
  stop_pager.store(true);
  pager.join();

  EXPECT_FALSE(violation.load());
  // Each key's final value equals the number of CAS successes on it: no
  // lost updates, no double counting, even with eviction racing the reads.
  for (int k = 0; k < kKeys; ++k) {
    std::string key = key_name(k);
    auto r = ht_.Get(key);
    ASSERT_TRUE(r.ok()) << key;
    if (!r->resident) {
      // Evicted at the finish line: the persisted copy is the truth.
      std::lock_guard<std::mutex> lock(disk_mu);
      ASSERT_TRUE(disk.count(key)) << key;
      ASSERT_EQ(disk[key].meta.seqno, r->doc.meta.seqno) << key;
      ht_.Restore(disk[key]);
      r = ht_.Get(key);
      ASSERT_TRUE(r.ok() && r->resident) << key;
    }
    EXPECT_EQ(std::stoi(r->doc.value), per_key_increments[k].load()) << key;
  }
}

}  // namespace
}  // namespace couchkv::kv
