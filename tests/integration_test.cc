// Whole-system integration tests: the Figure-6 asynchronous flow (memory →
// disk / replicas / views / GSI / XDCR), warmup after restart, topology
// changes under live query traffic, and cross-service consistency.
#include <gtest/gtest.h>

#include <thread>

#include "client/smart_client.h"
#include "n1ql/query_service.h"
#include "xdcr/xdcr.h"

namespace couchkv {
namespace {

using json::Value;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) cluster_.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    gsi_ = std::make_shared<gsi::IndexService>(&cluster_);
    gsi_->Attach();
    views_ = std::make_shared<views::ViewEngine>(&cluster_);
    views_->Attach();
    queries_ = std::make_unique<n1ql::QueryService>(&cluster_, gsi_, views_);
    client_ = std::make_unique<client::SmartClient>(&cluster_, "default");
  }

  cluster::Cluster cluster_;
  std::shared_ptr<gsi::IndexService> gsi_;
  std::shared_ptr<views::ViewEngine> views_;
  std::unique_ptr<n1ql::QueryService> queries_;
  std::unique_ptr<client::SmartClient> client_;
};

TEST_F(IntegrationTest, OneWriteReachesEveryComponent) {
  // Set up every derived consumer first.
  ASSERT_TRUE(queries_
                  ->Execute("CREATE INDEX by_kind ON `default`(kind) USING GSI")
                  .ok());
  views::ViewDefinition vdef;
  vdef.name = "by_kind_view";
  vdef.map.key_paths = {"kind"};
  ASSERT_TRUE(views_->CreateView("default", vdef).ok());

  // One durable write.
  client::WriteOptions opts;
  opts.durability = {1, 1, 10000};  // replicate to 1 AND persist to 1
  auto m = client_->Upsert("probe", R"({"kind":"canary"})", opts);
  ASSERT_TRUE(m.ok());
  uint16_t vb = client_->VBucketFor("probe");
  auto map = cluster_.map("default");
  cluster::NodeId active = map->ActiveFor(vb);
  std::shared_ptr<cluster::Bucket> ab = cluster_.node(active)->bucket("default");

  // 1. Persisted on the active node (durability already guaranteed it).
  EXPECT_GE(ab->vbucket(vb)->persisted_seqno(), m->seqno);
  EXPECT_EQ(ab->vbucket(vb)->file()->Get("probe")->value,
            R"({"kind":"canary"})");
  // 2. Replicated.
  cluster::NodeId replica = map->ReplicasFor(vb)[0];
  auto rep = cluster_.node(replica)
                 ->bucket("default")
                 ->vbucket(vb)
                 ->hash_table()
                 .Get("probe");
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep->doc.meta.cas, m->cas);
  // 3. Visible to a request_plus N1QL query via GSI.
  n1ql::QueryOptions qopts;
  qopts.consistency = gsi::ScanConsistency::kRequestPlus;
  auto qr = queries_->Execute(
      "SELECT META(d).id AS id FROM `default` d WHERE kind = 'canary'", qopts);
  ASSERT_TRUE(qr.ok()) << qr.status().ToString();
  ASSERT_EQ(qr->rows.size(), 1u);
  EXPECT_EQ(qr->rows[0].Field("id").AsString(), "probe");
  // 4. Visible to a stale=false view query.
  views::ViewQueryOptions vopts;
  vopts.key = Value::Str("canary");
  auto vr = views_->Query("default", "by_kind_view", vopts,
                          views::Staleness::kFalse);
  ASSERT_TRUE(vr.ok());
  EXPECT_EQ(vr->rows.size(), 1u);
}

TEST_F(IntegrationTest, DeleteDisappearsEverywhere) {
  ASSERT_TRUE(
      queries_->Execute("CREATE INDEX by_kind ON `default`(kind) USING GSI")
          .ok());
  ASSERT_TRUE(client_->Upsert("gone", R"({"kind":"temp"})").ok());
  ASSERT_TRUE(client_->Remove("gone").ok());
  n1ql::QueryOptions qopts;
  qopts.consistency = gsi::ScanConsistency::kRequestPlus;
  auto qr = queries_->Execute(
      "SELECT META(d).id FROM `default` d WHERE kind = 'temp'", qopts);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(qr->rows.empty());
  cluster_.Quiesce();
  uint16_t vb = client_->VBucketFor("gone");
  cluster::NodeId replica = cluster_.map("default")->ReplicasFor(vb)[0];
  EXPECT_TRUE(cluster_.node(replica)
                  ->bucket("default")
                  ->vbucket(vb)
                  ->hash_table()
                  .Get("gone")
                  .status()
                  .IsNotFound());
}

TEST_F(IntegrationTest, WarmupRestoresBucketFromStorage) {
  // Simulated node restart: write + flush through one Bucket instance,
  // destroy it, then warm a fresh Bucket up from the same "disk".
  auto env = storage::Env::NewMemEnv();
  ManualClock clock;
  cluster::BucketConfig cfg;
  cfg.name = "restartable";
  {
    dcp::Dispatcher dispatcher;
    cluster::Bucket before(cfg, /*node_id=*/9, env.get(), &clock,
                           &dispatcher);
    ASSERT_TRUE(before.SetVBucketState(0, cluster::VBucketState::kActive).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(before.vbucket(0)
                      ->Set("k" + std::to_string(i), "v" + std::to_string(i),
                            0, 0, 0)
                      .ok());
    }
    ASSERT_TRUE(before.vbucket(0)->Remove("k7", 0).ok());
    before.FlushAll();
  }  // "crash"
  dcp::Dispatcher dispatcher;
  cluster::Bucket after(cfg, 9, env.get(), &clock, &dispatcher);
  ASSERT_TRUE(after.SetVBucketState(0, cluster::VBucketState::kActive).ok());
  auto loaded = after.Warmup();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 49u);  // 50 writes, 1 deleted
  auto r = after.vbucket(0)->Get("k3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.value, "v3");
  EXPECT_TRUE(after.vbucket(0)->Get("k7").status().IsNotFound());
  // Seqno high-water marks survive the restart: new mutations continue on.
  auto m = after.vbucket(0)->Set("new", "nv", 0, 0, 0);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->seqno, 50u);
}

TEST_F(IntegrationTest, QueriesKeepWorkingThroughRebalance) {
  ASSERT_TRUE(
      queries_->Execute("CREATE INDEX by_n ON `default`(n) USING GSI").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client_
                    ->Upsert("d" + std::to_string(i),
                             R"({"n":)" + std::to_string(i) + "}")
                    .ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> ok_queries{0}, failed_queries{0};
  std::thread querier([&] {
    while (!stop.load()) {
      auto r = queries_->Execute("SELECT n FROM `default` WHERE n = 42");
      if (r.ok()) {
        ok_queries.fetch_add(1);
      } else {
        failed_queries.fetch_add(1);
      }
    }
  });
  cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  stop.store(true);
  querier.join();
  EXPECT_GT(ok_queries.load(), 0u);
  EXPECT_EQ(failed_queries.load(), 0u);
  // Post-rebalance, request_plus still returns exactly the right answer.
  n1ql::QueryOptions qopts;
  qopts.consistency = gsi::ScanConsistency::kRequestPlus;
  auto r = queries_->Execute("SELECT n FROM `default` WHERE n = 42", qopts);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
}

TEST_F(IntegrationTest, N1qlDmlFlowsToXdcrTarget) {
  cluster::Cluster dr;
  for (int i = 0; i < 2; ++i) dr.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 0;
  ASSERT_TRUE(dr.CreateBucket(cfg).ok());
  xdcr::XdcrSpec spec;
  spec.source_bucket = spec.target_bucket = "default";
  auto link = std::make_shared<xdcr::XdcrLink>(&cluster_, &dr, spec);
  ASSERT_TRUE(link->Start("to-dr").ok());

  // Mutations created through N1QL DML must replicate like any others.
  ASSERT_TRUE(queries_
                  ->Execute(R"(INSERT INTO `default` (KEY, VALUE)
                               VALUES ("dml::1", {"from": "n1ql"}))")
                  .ok());
  for (int i = 0; i < 4; ++i) {
    cluster_.Quiesce();
    dr.Quiesce();
  }
  client::SmartClient dr_client(&dr, "default");
  auto r = dr_client.GetJson("dml::1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Field("from").AsString(), "n1ql");
}

TEST_F(IntegrationTest, MdsTopologyDataIndexQuerySeparated) {
  // A cluster where each service runs on its own nodes (paper §4.4).
  cluster::Cluster mds;
  mds.AddNode(cluster::kDataService);
  mds.AddNode(cluster::kDataService);
  mds.AddNode(cluster::kIndexService);
  mds.AddNode(cluster::kQueryService);
  cluster::BucketConfig cfg;
  cfg.name = "b";
  cfg.num_replicas = 1;
  ASSERT_TRUE(mds.CreateBucket(cfg).ok());
  auto g = std::make_shared<gsi::IndexService>(&mds);
  g->Attach();
  auto v = std::make_shared<views::ViewEngine>(&mds);
  v->Attach();
  n1ql::QueryService qs(&mds, g, v);
  client::SmartClient c(&mds, "b");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        c.Upsert("k" + std::to_string(i), R"({"x":)" + std::to_string(i) + "}")
            .ok());
  }
  ASSERT_TRUE(qs.Execute("CREATE INDEX by_x ON b(x) USING GSI").ok());
  n1ql::QueryOptions qopts;
  qopts.consistency = gsi::ScanConsistency::kRequestPlus;
  auto r = qs.Execute("SELECT x FROM b WHERE x >= 15", qopts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 5u);
}

TEST_F(IntegrationTest, EndToEndPaperExampleProfileStory) {
  // The running example of the paper: the profile document from §3.1.2
  // accessed by key, by view, and by N1QL.
  ASSERT_TRUE(
      client_
          ->Upsert("borkar123",
                   R"({"name":"Dipti","email":"Dipti@couchbase.com"})")
          .ok());
  // Key access.
  auto kv_doc = client_->GetJson("borkar123");
  EXPECT_EQ(kv_doc->Field("name").AsString(), "Dipti");
  // View access: emit(doc.name, doc.email), key="Dipti", stale=false.
  views::ViewDefinition def;
  def.name = "profile";
  def.map.filter_exists_path = "name";
  def.map.key_paths = {"name"};
  def.map.value_path = "email";
  ASSERT_TRUE(views_->CreateView("default", def).ok());
  views::ViewQueryOptions vopts;
  vopts.key = Value::Str("Dipti");
  auto vr =
      views_->Query("default", "profile", vopts, views::Staleness::kFalse);
  ASSERT_TRUE(vr.ok());
  ASSERT_EQ(vr->rows.size(), 1u);
  EXPECT_EQ(vr->rows[0].value.AsString(), "Dipti@couchbase.com");
  // N1QL access with USE KEYS.
  auto qr = queries_->Execute(
      "SELECT email FROM `default` USE KEYS 'borkar123'");
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->rows[0].Field("email").AsString(), "Dipti@couchbase.com");
}

}  // namespace
}  // namespace couchkv
