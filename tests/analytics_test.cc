// Tests for the analytics service (paper §6.2): shadow-dataset ingestion,
// full scans without indexes, general hash joins (forbidden in N1QL),
// grouping/aggregation, performance isolation, topology changes.
#include <gtest/gtest.h>

#include "analytics/analytics.h"
#include "client/smart_client.h"
#include "n1ql/query_service.h"

namespace couchkv::analytics {
namespace {

using json::Value;

class AnalyticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) cluster_.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "orders";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    cfg.name = "customers";
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    service_ = std::make_shared<AnalyticsService>(&cluster_);
    service_->Attach();
    orders_ = std::make_unique<client::SmartClient>(&cluster_, "orders");
    customers_ = std::make_unique<client::SmartClient>(&cluster_, "customers");
  }

  void LoadSampleData() {
    ASSERT_TRUE(customers_->Upsert(
        "c1", R"({"name":"Alice","region":"west"})").ok());
    ASSERT_TRUE(customers_->Upsert(
        "c2", R"({"name":"Bob","region":"east"})").ok());
    ASSERT_TRUE(customers_->Upsert(
        "c3", R"({"name":"Cara","region":"west"})").ok());
    ASSERT_TRUE(orders_->Upsert(
        "o1", R"({"cust":"c1","total":100,"region":"west"})").ok());
    ASSERT_TRUE(orders_->Upsert(
        "o2", R"({"cust":"c1","total":250,"region":"west"})").ok());
    ASSERT_TRUE(orders_->Upsert(
        "o3", R"({"cust":"c2","total":75,"region":"east"})").ok());
    ASSERT_TRUE(orders_->Upsert(
        "o4", R"({"cust":"c9","total":10,"region":"east"})").ok());
  }

  void Connect() {
    ASSERT_TRUE(service_->ConnectBucket("orders").ok());
    ASSERT_TRUE(service_->ConnectBucket("customers").ok());
    ASSERT_TRUE(service_->WaitCaughtUp("orders").ok());
    ASSERT_TRUE(service_->WaitCaughtUp("customers").ok());
  }

  cluster::Cluster cluster_;
  std::shared_ptr<AnalyticsService> service_;
  std::unique_ptr<client::SmartClient> orders_, customers_;
};

TEST_F(AnalyticsTest, IngestsExistingAndNewData) {
  LoadSampleData();
  Connect();
  EXPECT_EQ(service_->dataset("orders")->num_docs(), 4u);
  // New writes flow in through DCP.
  ASSERT_TRUE(orders_->Upsert("o5", R"({"cust":"c3","total":5})").ok());
  ASSERT_TRUE(service_->WaitCaughtUp("orders").ok());
  EXPECT_EQ(service_->dataset("orders")->num_docs(), 5u);
  // Deletes too.
  ASSERT_TRUE(orders_->Remove("o5").ok());
  ASSERT_TRUE(service_->WaitCaughtUp("orders").ok());
  EXPECT_EQ(service_->dataset("orders")->num_docs(), 4u);
}

TEST_F(AnalyticsTest, FullScanNeedsNoIndex) {
  LoadSampleData();
  Connect();
  // No PRIMARY INDEX anywhere — the analytics engine scans the shadow.
  auto r = service_->Query(
      "SELECT total FROM orders WHERE total > 50 ORDER BY total");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0].Field("total").AsInt(), 75);
  EXPECT_GT(r->scanned_docs, 0u);
}

TEST_F(AnalyticsTest, GeneralHashJoin) {
  LoadSampleData();
  Connect();
  // A general equality join on secondary attributes — exactly what N1QL
  // §3.2.4 refuses ("A restricted Cartesian product across two secondary
  // attributes of documents is not supported linguistically in N1QL").
  auto r = service_->Query(
      "SELECT c.name, o.total FROM orders o "
      "JOIN customers c ON o.cust = META(c).id "
      "ORDER BY o.total DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);  // o4 has no matching customer
  EXPECT_EQ(r->rows[0].Field("name").AsString(), "Alice");
  EXPECT_EQ(r->rows[0].Field("total").AsInt(), 250);
}

TEST_F(AnalyticsTest, SecondaryAttributeJoin) {
  LoadSampleData();
  Connect();
  // Join on region — neither side is a primary key.
  auto r = service_->Query(
      "SELECT DISTINCT c.name FROM orders o "
      "JOIN customers c ON o.region = c.region "
      "WHERE o.total >= 100 ORDER BY c.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);  // Alice + Cara (west)
  EXPECT_EQ(r->rows[0].Field("name").AsString(), "Alice");
  EXPECT_EQ(r->rows[1].Field("name").AsString(), "Cara");
}

TEST_F(AnalyticsTest, LeftOuterGeneralJoin) {
  LoadSampleData();
  Connect();
  auto r = service_->Query(
      "SELECT META(o).id AS oid, c.name FROM orders o "
      "LEFT JOIN customers c ON o.cust = META(c).id ORDER BY oid");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 4u);
  EXPECT_TRUE(r->rows[3].Field("name").is_missing());  // o4: no customer
}

TEST_F(AnalyticsTest, NonEquiJoinFallsBackToNestedLoop) {
  LoadSampleData();
  Connect();
  auto r = service_->Query(
      "SELECT META(o).id AS oid, c.name FROM orders o "
      "JOIN customers c ON o.total > 200 AND c.region = 'west' "
      "ORDER BY oid, c.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);  // o2 x {Alice, Cara}
}

TEST_F(AnalyticsTest, GroupByAggregation) {
  LoadSampleData();
  Connect();
  auto r = service_->Query(
      "SELECT region, COUNT(*) AS n, SUM(total) AS revenue "
      "FROM orders GROUP BY region ORDER BY region");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0].Field("region").AsString(), "east");
  EXPECT_EQ(r->rows[0].Field("n").AsInt(), 2);
  EXPECT_EQ(r->rows[0].Field("revenue").AsInt(), 85);
  EXPECT_EQ(r->rows[1].Field("revenue").AsInt(), 350);
}

TEST_F(AnalyticsTest, SameQueryRejectedByN1ql) {
  LoadSampleData();
  auto gsi = std::make_shared<gsi::IndexService>(&cluster_);
  gsi->Attach();
  auto views = std::make_shared<views::ViewEngine>(&cluster_);
  views->Attach();
  n1ql::QueryService qs(&cluster_, gsi, views);
  auto r = qs.Execute(
      "SELECT c.name FROM orders o JOIN customers c ON o.cust = META(c).id");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(AnalyticsTest, ReadOnlyService) {
  LoadSampleData();
  Connect();
  EXPECT_FALSE(service_
                   ->Query(R"(INSERT INTO orders (KEY, VALUE) VALUES ("x", 1))")
                   .ok());
  EXPECT_FALSE(service_->Query("DELETE FROM orders").ok());
}

TEST_F(AnalyticsTest, NotConnectedBucketFails) {
  EXPECT_FALSE(service_->Query("SELECT * FROM orders").ok());
  LoadSampleData();
  ASSERT_TRUE(service_->ConnectBucket("orders").ok());
  EXPECT_TRUE(service_->ConnectBucket("orders").IsKeyExists());
}

TEST_F(AnalyticsTest, DisconnectStopsIngestion) {
  LoadSampleData();
  Connect();
  ASSERT_TRUE(service_->DisconnectBucket("orders").ok());
  EXPECT_FALSE(service_->Query("SELECT * FROM orders").ok());
}

TEST_F(AnalyticsTest, SurvivesRebalance) {
  LoadSampleData();
  Connect();
  cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  ASSERT_TRUE(orders_->Upsert("o9", R"({"cust":"c1","total":7})").ok());
  ASSERT_TRUE(service_->WaitCaughtUp("orders").ok());
  auto r = service_->Query("SELECT COUNT(*) AS n FROM orders");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0].Field("n").AsInt(), 5);
}

TEST_F(AnalyticsTest, UnnestAndParams) {
  ASSERT_TRUE(orders_->Upsert(
      "basket1", R"({"items":[{"sku":"a","qty":2},{"sku":"b","qty":1}]})").ok());
  ASSERT_TRUE(service_->ConnectBucket("orders").ok());
  ASSERT_TRUE(service_->WaitCaughtUp("orders").ok());
  auto r = service_->Query(
      "SELECT i.sku FROM orders o UNNEST o.items AS i WHERE i.qty >= $1 "
      "ORDER BY i.sku",
      {Value::Int(1)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0].Field("sku").AsString(), "a");
}

}  // namespace
}  // namespace couchkv::analytics
