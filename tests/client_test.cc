// Tests for the smart client: routing, CAS workflow, durability options,
// locks, JSON helpers, and transparent re-routing across topology changes.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "client/smart_client.h"

namespace couchkv::client {
namespace {

class SmartClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) cluster_.AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    client_ = std::make_unique<SmartClient>(&cluster_, "default");
  }

  cluster::Cluster cluster_;
  std::unique_ptr<SmartClient> client_;
};

TEST_F(SmartClientTest, UpsertGetRoundTrip) {
  auto m = client_->Upsert("profile::1", R"({"name":"Dipti"})");
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->cas, 0u);
  auto r = client_->Get("profile::1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, R"({"name":"Dipti"})");
  EXPECT_EQ(r->cas, m->cas);
}

TEST_F(SmartClientTest, GetMissingIsNotFound) {
  EXPECT_TRUE(client_->Get("nope").status().IsNotFound());
}

TEST_F(SmartClientTest, InsertTwiceFails) {
  ASSERT_TRUE(client_->Insert("k", "v").ok());
  EXPECT_TRUE(client_->Insert("k", "v").status().IsKeyExists());
}

TEST_F(SmartClientTest, ReplaceMissingFails) {
  EXPECT_TRUE(client_->Replace("k", "v").status().IsNotFound());
}

TEST_F(SmartClientTest, OptimisticCasWorkflow) {
  auto m1 = client_->Upsert("k", "v1");
  // Another client sneaks in.
  ASSERT_TRUE(client_->Upsert("k", "v2").ok());
  WriteOptions opts;
  opts.cas = m1->cas;
  EXPECT_TRUE(client_->Replace("k", "v3", opts).status().IsKeyExists());
  // Re-read, retry.
  auto fresh = client_->Get("k");
  opts.cas = fresh->cas;
  EXPECT_TRUE(client_->Replace("k", "v3", opts).ok());
  EXPECT_EQ(client_->Get("k")->value, "v3");
}

TEST_F(SmartClientTest, RemoveThenGetNotFound) {
  ASSERT_TRUE(client_->Upsert("k", "v").ok());
  ASSERT_TRUE(client_->Remove("k").ok());
  EXPECT_TRUE(client_->Get("k").status().IsNotFound());
}

TEST_F(SmartClientTest, JsonHelpers) {
  json::Value doc = json::Value::MakeObject();
  doc["name"] = json::Value::Str("Gerald");
  doc["age"] = json::Value::Int(42);
  ASSERT_TRUE(client_->UpsertJson("p1", doc).ok());
  auto round = client_->GetJson("p1");
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->Field("name").AsString(), "Gerald");
  EXPECT_EQ(round->Field("age").AsInt(), 42);
}

TEST_F(SmartClientTest, DurabilityOptionsSucceed) {
  WriteOptions opts;
  opts.durability = cluster::Durability::Replicate(1);
  EXPECT_TRUE(client_->Upsert("r", "v", opts).ok());
  opts.durability = cluster::Durability::Persist(1);
  EXPECT_TRUE(client_->Upsert("p", "v", opts).ok());
  opts.durability.replicate_to = 1;
  opts.durability.persist_to = 2;  // active + replica persistence
  EXPECT_TRUE(client_->Upsert("rp", "v", opts).ok());
}

TEST_F(SmartClientTest, LockWorkflow) {
  ASSERT_TRUE(client_->Upsert("k", "v").ok());
  auto locked = client_->GetAndLock("k", 15000);
  ASSERT_TRUE(locked.ok());
  EXPECT_TRUE(client_->Upsert("k", "steal").status().IsLocked());
  WriteOptions opts;
  opts.cas = locked->cas;
  EXPECT_TRUE(client_->Upsert("k", "mine", opts).ok());
}

TEST_F(SmartClientTest, UnlockReleases) {
  ASSERT_TRUE(client_->Upsert("k", "v").ok());
  auto locked = client_->GetAndLock("k", 15000);
  ASSERT_TRUE(client_->Unlock("k", locked->cas).ok());
  EXPECT_TRUE(client_->Upsert("k", "free").ok());
}

TEST_F(SmartClientTest, SurvivesRebalance) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        client_->Upsert("key" + std::to_string(i), "v" + std::to_string(i))
            .ok());
  }
  cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  // The client's cached map is stale; it must re-route transparently.
  for (int i = 0; i < 100; ++i) {
    auto r = client_->Get("key" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->value, "v" + std::to_string(i));
  }
  EXPECT_TRUE(client_->Upsert("new-key", "nv").ok());
}

TEST_F(SmartClientTest, SurvivesFailover) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client_->Upsert("key" + std::to_string(i), "v").ok());
  }
  cluster_.Quiesce();  // let replication catch up before the crash
  ASSERT_TRUE(cluster_.Failover(3).ok());
  for (int i = 0; i < 100; ++i) {
    auto r = client_->Get("key" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST_F(SmartClientTest, ConcurrentClientsNoLostUpdates) {
  // Each thread increments a counter field under CAS; the total must equal
  // the number of successful increments.
  ASSERT_TRUE(client_->Upsert("counter", R"({"n":0})").ok());
  constexpr int kThreads = 8;
  constexpr int kIncrPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      SmartClient local(&cluster_, "default");
      for (int i = 0; i < kIncrPerThread; ++i) {
        for (;;) {  // CAS retry loop
          auto cur = local.Get("counter");
          ASSERT_TRUE(cur.ok());
          auto doc = json::Parse(cur->value).value();
          doc["n"] = json::Value::Int(doc.Field("n").AsInt() + 1);
          WriteOptions opts;
          opts.cas = cur->cas;
          auto st = local.Replace("counter", doc.ToJson(), opts);
          if (st.ok()) break;
          ASSERT_TRUE(st.status().IsKeyExists() || st.status().IsLocked());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  auto final_doc = client_->GetJson("counter");
  EXPECT_EQ(final_doc->Field("n").AsInt(), kThreads * kIncrPerThread);
}

TEST_F(SmartClientTest, SubdocLookupIn) {
  ASSERT_TRUE(client_->Upsert("doc", R"({"a":{"b":[10,20]},"name":"X"})").ok());
  auto v = client_->LookupIn("doc", "a.b[1]");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 20);
  EXPECT_TRUE(client_->LookupIn("doc", "a.zzz")->is_missing());
  EXPECT_TRUE(client_->LookupIn("gone", "a").status().IsNotFound());
}

TEST_F(SmartClientTest, SubdocMutateIn) {
  ASSERT_TRUE(client_->Upsert("doc", R"({"profile":{"age":30}})").ok());
  ASSERT_TRUE(client_->MutateIn("doc", "profile.city",
                                json::Value::Str("SF")).ok());
  ASSERT_TRUE(
      client_->MutateIn("doc", "profile.age", json::Value::Int(31)).ok());
  auto round = client_->GetJson("doc");
  EXPECT_EQ(round->GetPath("profile.city").AsString(), "SF");
  EXPECT_EQ(round->GetPath("profile.age").AsInt(), 31);
}

TEST_F(SmartClientTest, SubdocRemoveIn) {
  ASSERT_TRUE(client_->Upsert("doc", R"({"keep":1,"drop":2})").ok());
  ASSERT_TRUE(client_->RemoveIn("doc", "drop").ok());
  EXPECT_TRUE(client_->RemoveIn("doc", "drop").status().IsNotFound());
  auto round = client_->GetJson("doc");
  EXPECT_TRUE(round->Field("drop").is_missing());
  EXPECT_EQ(round->Field("keep").AsInt(), 1);
}

TEST_F(SmartClientTest, SubdocMutateInConcurrent) {
  ASSERT_TRUE(client_->Upsert("doc", R"({"counters":{}})").ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      SmartClient local(&cluster_, "default");
      for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(local
                        .MutateIn("doc",
                                  "counters.t" + std::to_string(t) + "_" +
                                      std::to_string(i),
                                  json::Value::Int(i))
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  auto round = client_->GetJson("doc");
  EXPECT_EQ(round->Field("counters").AsObject().size(), 80u);
}

TEST_F(SmartClientTest, IncrementCreatesAndCounts) {
  auto v = client_->Increment("hits", 1, /*initial=*/100);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 101);
  EXPECT_EQ(*client_->Increment("hits", 5), 106);
  EXPECT_EQ(*client_->Increment("hits", -6), 100);
}

TEST_F(SmartClientTest, IncrementConcurrentNoLostCounts) {
  constexpr int kThreads = 6, kPerThread = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      SmartClient local(&cluster_, "default");
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(local.Increment("ctr", 1).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  auto final_value = client_->GetJson("ctr");
  EXPECT_EQ(final_value->AsInt(), kThreads * kPerThread);
}

TEST_F(SmartClientTest, IncrementOnNonNumberFails) {
  ASSERT_TRUE(client_->Upsert("text", R"("hello")").ok());
  EXPECT_FALSE(client_->Increment("text", 1).ok());
}

TEST_F(SmartClientTest, VBucketForIsStable) {
  EXPECT_EQ(client_->VBucketFor("abc"), client_->VBucketFor("abc"));
  EXPECT_LT(client_->VBucketFor("abc"), cluster::kNumVBuckets);
}

// --- Retry backoff policy ---

TEST(SmartClientBackoffTest, DoublingWithoutJitterIsExactAndCapped) {
  RetryPolicy p;
  p.jitter = false;
  p.initial_backoff_us = 50;
  p.max_backoff_us = 300;
  Rng rng(42);
  EXPECT_EQ(NextBackoffUs(p, 50, rng), 100u);
  EXPECT_EQ(NextBackoffUs(p, 100, rng), 200u);
  EXPECT_EQ(NextBackoffUs(p, 200, rng), 300u);  // capped
  EXPECT_EQ(NextBackoffUs(p, 300, rng), 300u);
}

TEST(SmartClientBackoffTest, DecorrelatedJitterStaysInBoundsAndVaries) {
  RetryPolicy p;  // jitter defaults to on
  ASSERT_TRUE(p.jitter);
  p.initial_backoff_us = 50;
  p.max_backoff_us = 2000;
  Rng rng(42);
  uint64_t prev = p.initial_backoff_us;
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    uint64_t next = NextBackoffUs(p, prev, rng);
    ASSERT_GE(next, p.initial_backoff_us);
    ASSERT_LE(next, p.max_backoff_us);
    ASSERT_LE(next, std::max(p.initial_backoff_us, prev * 3));
    seen.insert(next);
    prev = next;
  }
  // Decorrelated: the sequence actually varies instead of locking into the
  // deterministic doubling ladder that synchronizes client retry storms.
  EXPECT_GT(seen.size(), 10u);
}

// --- Fail-fast when a vBucket has no active copy ---

TEST(SmartClientNoActiveTest, OpsOnLostVBucketFailFastWithoutRetryBurn) {
  cluster::Cluster cluster;
  cluster.AddNode();
  cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "b";
  cfg.num_replicas = 0;
  ASSERT_TRUE(cluster.CreateBucket(cfg).ok());
  // Manual failover of a node with zero replicas orphans its vBuckets.
  ASSERT_TRUE(cluster.Failover(0, cluster::FailoverMode::kManual).ok());

  auto map = cluster.map("b");
  std::string lost, alive;
  for (int i = 0; (lost.empty() || alive.empty()) && i < 10000; ++i) {
    std::string cand = "key" + std::to_string(i);
    if (map->ActiveFor(cluster::KeyToVBucket(cand)) == cluster::kNoNode) {
      if (lost.empty()) lost = cand;
    } else if (alive.empty()) {
      alive = cand;
    }
  }
  ASSERT_FALSE(lost.empty());
  ASSERT_FALSE(alive.empty());

  // With this policy a full retry burn would sleep ~63 * 5ms ≈ 315ms.
  RetryPolicy slow;
  slow.max_attempts = 64;
  slow.initial_backoff_us = 5000;
  slow.max_backoff_us = 5000;
  SmartClient client(&cluster, "b", slow, /*client_id=*/700);
  auto t0 = std::chrono::steady_clock::now();
  auto r = client.Get(lost);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_TRUE(r.status().IsTempFail()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("no active"), std::string::npos)
      << r.status().ToString();
  EXPECT_LT(elapsed_ms, 100);
  // Keys whose vBucket still has an active are unaffected.
  ASSERT_TRUE(client.Upsert(alive, "v").ok());
  EXPECT_EQ(client.Get(alive)->value, "v");
}

}  // namespace
}  // namespace couchkv::client
