// Property-based model tests: long random operation sequences are applied
// both to the real component and to a trivially-correct in-memory model,
// then the observable behaviour is compared. Failure injection (crash =
// drop uncommitted tail; compaction at random points) is interleaved.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/random.h"
#include "kv/hash_table.h"
#include "storage/couch_file.h"

namespace couchkv {
namespace {

// --- Storage engine vs model ----------------------------------------------

struct StorageModelParams {
  uint64_t seed;
  bool posix;  // MemEnv vs posix-like behaviours are identical; vary anyway
};

class StorageModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorageModelTest, RandomOpsWithCrashesAndCompaction) {
  Rng rng(GetParam());
  auto env = storage::Env::NewMemEnv();
  auto file = storage::CouchFile::Open(env.get(), "model.couch").value();

  // The model: committed state and the pending (uncommitted) delta.
  std::map<std::string, std::optional<std::string>> committed;  // nullopt=del
  std::map<std::string, std::optional<std::string>> pending;
  uint64_t seqno = 0;

  auto apply_pending = [&] {
    for (auto& [k, v] : pending) committed[k] = v;
    pending.clear();
  };

  for (int step = 0; step < 2000; ++step) {
    int action = static_cast<int>(rng.Uniform(100));
    if (action < 55) {  // write
      std::string key = "k" + std::to_string(rng.Uniform(40));
      std::string value = "v" + std::to_string(rng.Next() % 100000);
      kv::Document doc;
      doc.key = key;
      doc.value = value;
      doc.meta.seqno = ++seqno;
      ASSERT_TRUE(file->SaveDocs({doc}).ok());
      pending[key] = value;
    } else if (action < 70) {  // delete
      std::string key = "k" + std::to_string(rng.Uniform(40));
      kv::Document doc;
      doc.key = key;
      doc.meta.seqno = ++seqno;
      doc.meta.deleted = true;
      ASSERT_TRUE(file->SaveDocs({doc}).ok());
      pending[key] = std::nullopt;
    } else if (action < 85) {  // commit
      ASSERT_TRUE(file->Commit().ok());
      apply_pending();
    } else if (action < 93) {  // crash + recover: uncommitted tail vanishes
      file.reset();
      file = storage::CouchFile::Open(env.get(), "model.couch").value();
      pending.clear();
      // seqno keeps increasing; the model continues from the survivor.
      seqno = std::max(seqno, file->high_seqno());
    } else if (action < 98) {  // compaction preserves committed+pending state
      ASSERT_TRUE(file->Commit().ok());
      apply_pending();
      ASSERT_TRUE(file->Compact().ok());
    } else {  // verify everything
      auto expected_view = committed;
      for (auto& [k, v] : pending) expected_view[k] = v;
      for (auto& [key, expected] : expected_view) {
        auto actual = file->Get(key);
        if (expected.has_value()) {
          ASSERT_TRUE(actual.ok())
              << "step " << step << " key " << key << " missing";
          EXPECT_EQ(actual->value, *expected) << "step " << step;
        } else {
          EXPECT_TRUE(actual.status().IsNotFound())
              << "step " << step << " key " << key << " should be deleted";
        }
      }
    }
  }

  // Final full verification after one more crash/recover cycle.
  ASSERT_TRUE(file->Commit().ok());
  apply_pending();
  file.reset();
  file = storage::CouchFile::Open(env.get(), "model.couch").value();
  size_t live = 0;
  for (auto& [key, expected] : committed) {
    auto actual = file->Get(key);
    if (expected.has_value()) {
      ++live;
      ASSERT_TRUE(actual.ok()) << key;
      EXPECT_EQ(actual->value, *expected);
    } else {
      EXPECT_TRUE(actual.status().IsNotFound()) << key;
    }
  }
  EXPECT_EQ(file->stats().num_live_docs, live);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- HashTable vs model -----------------------------------------------------

class HashTableModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashTableModelTest, RandomOpsMatchModel) {
  Rng rng(GetParam());
  ManualClock clock(1'000'000'000ULL);
  kv::HashTable ht(&clock);

  struct ModelDoc {
    std::string value;
    uint64_t cas;
    uint32_t expiry;
  };
  std::map<std::string, ModelDoc> model;

  auto expire_sweep = [&] {
    for (auto it = model.begin(); it != model.end();) {
      if (it->second.expiry != 0 && clock.NowSeconds() >= it->second.expiry) {
        it = model.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (int step = 0; step < 4000; ++step) {
    std::string key = "k" + std::to_string(rng.Uniform(25));
    int action = static_cast<int>(rng.Uniform(100));
    expire_sweep();
    if (action < 35) {  // unconditional set
      uint32_t expiry = rng.OneIn(8) ? static_cast<uint32_t>(
                                           clock.NowSeconds() + rng.Uniform(5))
                                     : 0;
      std::string value = "v" + std::to_string(step);
      auto m = ht.Set(key, value, 0, expiry, 0);
      ASSERT_TRUE(m.ok());
      model[key] = ModelDoc{value, m->cas, expiry};
    } else if (action < 50) {  // CAS set (sometimes stale)
      auto it = model.find(key);
      uint64_t cas = it != model.end() && !rng.OneIn(4)
                         ? it->second.cas
                         : rng.Next() | 1;  // usually valid, sometimes junk
      std::string value = "c" + std::to_string(step);
      auto m = ht.Set(key, value, 0, 0, cas);
      bool model_ok = it != model.end() && cas == it->second.cas;
      EXPECT_EQ(m.ok(), model_ok) << "step " << step;
      if (m.ok()) model[key] = ModelDoc{value, m->cas, 0};
    } else if (action < 62) {  // add
      auto m = ht.Add(key, "a", 0, 0);
      EXPECT_EQ(m.ok(), model.count(key) == 0) << "step " << step;
      if (m.ok()) model[key] = ModelDoc{"a", m->cas, 0};
    } else if (action < 72) {  // replace
      auto m = ht.Replace(key, "r", 0, 0, 0);
      EXPECT_EQ(m.ok(), model.count(key) == 1) << "step " << step;
      if (m.ok()) model[key] = ModelDoc{"r", m->cas, 0};
    } else if (action < 82) {  // remove
      auto m = ht.Remove(key, 0);
      EXPECT_EQ(m.ok(), model.count(key) == 1) << "step " << step;
      model.erase(key);
    } else if (action < 90) {  // advance time (triggers TTL expiry)
      clock.AdvanceSeconds(rng.Uniform(3));
    } else {  // read + compare
      auto r = ht.Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(r.status().IsNotFound()) << "step " << step;
      } else {
        ASSERT_TRUE(r.ok()) << "step " << step << " key " << key;
        EXPECT_EQ(r->doc.value, it->second.value) << "step " << step;
        EXPECT_EQ(r->doc.meta.cas, it->second.cas) << "step " << step;
      }
    }
  }

  // Final sweep: every model entry matches; expired/removed are gone.
  expire_sweep();
  for (const auto& [key, doc] : model) {
    auto r = ht.Get(key);
    ASSERT_TRUE(r.ok()) << key;
    EXPECT_EQ(r->doc.value, doc.value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashTableModelTest,
                         ::testing::Values(7, 11, 17, 23, 29, 41));

}  // namespace
}  // namespace couchkv
