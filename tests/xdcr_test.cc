// Tests for cross-datacenter replication: basic replication, filtering,
// conflict resolution, bidirectional convergence, target topology awareness.
#include <gtest/gtest.h>

#include "client/smart_client.h"
#include "xdcr/xdcr.h"

namespace couchkv::xdcr {
namespace {

class XdcrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 2; ++i) {
      east_.AddNode();
      west_.AddNode();
    }
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(east_.CreateBucket(cfg).ok());
    ASSERT_TRUE(west_.CreateBucket(cfg).ok());
    east_client_ = std::make_unique<client::SmartClient>(&east_, "default");
    west_client_ = std::make_unique<client::SmartClient>(&west_, "default");
  }

  std::shared_ptr<XdcrLink> Link(cluster::Cluster* src, cluster::Cluster* dst,
                                 const std::string& name,
                                 const std::string& filter = "") {
    XdcrSpec spec;
    spec.source_bucket = "default";
    spec.target_bucket = "default";
    spec.key_filter_regex = filter;
    auto link = std::make_shared<XdcrLink>(src, dst, spec);
    EXPECT_TRUE(link->Start(name).ok());
    return link;
  }

  void QuiesceBoth() {
    // XDCR shipping happens inside DCP delivery, so draining both clusters
    // repeatedly settles the cross-cluster traffic too.
    for (int i = 0; i < 4; ++i) {
      east_.Quiesce();
      west_.Quiesce();
    }
  }

  cluster::Cluster east_, west_;
  std::unique_ptr<client::SmartClient> east_client_;
  std::unique_ptr<client::SmartClient> west_client_;
};

TEST_F(XdcrTest, ReplicatesDocuments) {
  auto link = Link(&east_, &west_, "east-west");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(east_client_
                    ->Upsert("doc" + std::to_string(i),
                             R"({"v":)" + std::to_string(i) + "}")
                    .ok());
  }
  QuiesceBoth();
  for (int i = 0; i < 50; ++i) {
    auto r = west_client_->Get("doc" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "doc" << i;
  }
  EXPECT_GE(link->stats().docs_sent, 50u);
}

TEST_F(XdcrTest, ReplicatesDeletes) {
  auto link = Link(&east_, &west_, "east-west");
  ASSERT_TRUE(east_client_->Upsert("k", "{\"a\":1}").ok());
  QuiesceBoth();
  ASSERT_TRUE(west_client_->Get("k").ok());
  ASSERT_TRUE(east_client_->Remove("k").ok());
  QuiesceBoth();
  EXPECT_TRUE(west_client_->Get("k").status().IsNotFound());
}

TEST_F(XdcrTest, FilteredReplication) {
  // Per the paper: filtering "based on a regular expression on the
  // document ID".
  auto link = Link(&east_, &west_, "east-west", "^replicate:");
  ASSERT_TRUE(east_client_->Upsert("replicate:1", "{}").ok());
  ASSERT_TRUE(east_client_->Upsert("local:1", "{}").ok());
  QuiesceBoth();
  EXPECT_TRUE(west_client_->Get("replicate:1").ok());
  EXPECT_TRUE(west_client_->Get("local:1").status().IsNotFound());
  EXPECT_GE(link->stats().docs_filtered, 1u);
}

TEST_F(XdcrTest, ConflictResolutionMostUpdatesWins) {
  // §4.6.1: "the document with the most updates is considered the winner".
  ASSERT_TRUE(east_client_->Upsert("k", R"({"site":"east"})").ok());
  // West's copy sees three updates (higher revno).
  ASSERT_TRUE(west_client_->Upsert("k", R"({"site":"west","v":1})").ok());
  ASSERT_TRUE(west_client_->Upsert("k", R"({"site":"west","v":2})").ok());
  ASSERT_TRUE(west_client_->Upsert("k", R"({"site":"west","v":3})").ok());

  auto e2w = Link(&east_, &west_, "east-west");
  auto w2e = Link(&west_, &east_, "west-east");
  QuiesceBoth();
  QuiesceBoth();

  auto east_doc = east_client_->GetJson("k");
  auto west_doc = west_client_->GetJson("k");
  ASSERT_TRUE(east_doc.ok());
  ASSERT_TRUE(west_doc.ok());
  // Both clusters converge on the same winner: the thrice-updated west doc.
  EXPECT_EQ(east_doc->Field("site").AsString(), "west");
  EXPECT_EQ(west_doc->Field("site").AsString(), "west");
  EXPECT_EQ(east_doc->Field("v").AsInt(), 3);
}

TEST_F(XdcrTest, BidirectionalConvergesWithoutLoops) {
  auto e2w = Link(&east_, &west_, "east-west");
  auto w2e = Link(&west_, &east_, "west-east");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        east_client_->Upsert("east" + std::to_string(i), "{\"s\":1}").ok());
    ASSERT_TRUE(
        west_client_->Upsert("west" + std::to_string(i), "{\"s\":2}").ok());
  }
  QuiesceBoth();
  QuiesceBoth();
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(east_client_->Get("west" + std::to_string(i)).ok());
    EXPECT_TRUE(west_client_->Get("east" + std::to_string(i)).ok());
  }
  // Echo suppression: the reverse link rejects re-delivered docs instead of
  // ping-ponging forever.
  EXPECT_GT(w2e->stats().docs_rejected + e2w->stats().docs_rejected, 0u);
}

TEST_F(XdcrTest, TargetTopologyAwareness) {
  auto link = Link(&east_, &west_, "east-west");
  ASSERT_TRUE(east_client_->Upsert("pre", "{}").ok());
  QuiesceBoth();
  // Destination cluster failover: XDCR must keep replicating to the
  // promoted replicas ("cluster topology aware", §4.6).
  ASSERT_TRUE(west_.Failover(1).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(east_client_->Upsert("post" + std::to_string(i), "{}").ok());
  }
  QuiesceBoth();
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(west_client_->Get("post" + std::to_string(i)).ok())
        << "post" << i;
  }
}

}  // namespace
}  // namespace couchkv::xdcr
