// Disk-fault torture: every node's simulated disk is a storage::FaultyEnv
// (seeded, deterministic), and the tests drive the cluster's write path —
// flusher, commit, PersistTo durability, crash recovery, warmup — through
// injected Append/Sync/Read failures. The contract under test is the
// error-path discipline this repo enforces at compile time, proven at run
// time:
//
//   * An acknowledged write is never dropped because the disk faulted: the
//     flusher re-enqueues failed batches and retries until the disk heals.
//   * PersistTo durability never lies: while the flusher is stalled on a
//     failing disk, persist_to=1 writes report Timeout, not success.
//   * Committed state never regresses: recovery lands on the last good
//     commit, and an unreadable region fails warmup loudly instead of
//     being truncated away as if it were a torn tail.
//
// Scenarios are parameterized by seed; CI's sanitizer configurations run
// the /0 instance of each (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "harness/torture.h"
#include "stats/registry.h"
#include "storage/faulty_env.h"

namespace couchkv {
namespace {

using SteadyClock = std::chrono::steady_clock;

// A cluster whose every node disk is a FaultyEnv. Faults start DISABLED so
// setup traffic (bucket creation, initial load) runs on a healthy disk;
// tests arm them via envs[id]->set_faults_enabled(true) / scheduled faults.
struct FaultyCluster {
  std::map<cluster::NodeId, storage::FaultyEnv*> envs;
  std::unique_ptr<cluster::Cluster> cluster;

  FaultyCluster(int nodes, uint32_t replicas,
                storage::FaultyEnvOptions fault_opts) {
    cluster::ClusterOptions copts;
    copts.wrap_node_env =
        [this, fault_opts](cluster::NodeId id,
                           std::unique_ptr<storage::Env> base)
        -> std::unique_ptr<storage::Env> {
      storage::FaultyEnvOptions o = fault_opts;
      o.seed = fault_opts.seed + id;  // distinct per-node stream, seed-derived
      auto fe = std::make_unique<storage::FaultyEnv>(std::move(base), o);
      fe->set_faults_enabled(false);
      envs[id] = fe.get();
      return fe;
    };
    cluster = std::make_unique<cluster::Cluster>(copts);
    for (int i = 0; i < nodes; ++i) cluster->AddNode();
    cluster::BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = replicas;
    EXPECT_TRUE(cluster->CreateBucket(cfg).ok());
  }

  void SetFaultsEnabled(bool enabled) {
    for (auto& [id, fe] : envs) fe->set_faults_enabled(enabled);
  }
};

bool WaitFor(const std::function<bool()>& pred,
             std::chrono::milliseconds timeout) {
  auto deadline = SteadyClock::now() + timeout;
  while (SteadyClock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

class DiskFaultTest : public ::testing::TestWithParam<uint64_t> {};

// Satellite (a): a transient IOError in the flusher must converge — failed
// batches are re-enqueued and retried, the failure is visible in the
// flush_fails/flush_retries counters, and once the disk heals every
// acknowledged write reaches disk and survives a crash+warmup.
TEST_P(DiskFaultTest, FlusherRetriesConvergeAfterTransientSyncFailures) {
  storage::FaultyEnvOptions fopts;
  fopts.seed = GetParam();
  fopts.sync_fail_prob = 1.0;  // while enabled, every commit fsync fails
  FaultyCluster fc(1, 0, fopts);

  auto scope = stats::Registry::Global().GetScope("node.0.bucket.default");
  stats::Counter* fails = scope->GetCounter("flusher.flush_fails");
  stats::Counter* retries = scope->GetCounter("flusher.flush_retries");

  client::SmartClient client(fc.cluster.get(), "default");
  fc.envs[0]->set_faults_enabled(true);

  // Writes are acknowledged from memory even though every flush is failing.
  client::MutateReply last{};
  for (int i = 0; i < 16; ++i) {
    auto r = client.Upsert("key" + std::to_string(i), "v1");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    last = *r;
  }

  // The flusher must be visibly failing AND re-enqueueing (not dropping).
  ASSERT_TRUE(WaitFor(
      [&] { return fails->Value() > 0 && retries->Value() > 0; },
      std::chrono::seconds(10)))
      << "flusher never reported a failed+retried batch; fails="
      << fails->Value() << " retries=" << retries->Value();
  EXPECT_GE(fc.envs[0]->stats().syncs_failed, 1u);

  // Heal the disk: the flusher's retry backoff converges with no new
  // writes, and the last write becomes genuinely persisted.
  fc.envs[0]->set_faults_enabled(false);
  cluster::Durability dur = cluster::Durability::Persist(1);
  dur.timeout_ms = 10000;
  Status st =
      fc.cluster->WaitForDurability("default", last.vbucket, last.seqno, dur);
  EXPECT_TRUE(st.ok()) << st.ToString();
  fc.cluster->Quiesce();

  // The real proof: crash the node and warm up from disk. Every write acked
  // during the fault window must have made it.
  ASSERT_TRUE(fc.cluster->CrashNode(0).ok());
  ASSERT_TRUE(fc.cluster->RestartNode(0).ok());
  for (int i = 0; i < 16; ++i) {
    auto got = client.Get("key" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "key" << i << ": " << got.status().ToString();
    EXPECT_EQ(got->value, "v1");
  }
}

// Satellite (c): PersistTo durability must not be conflated with success.
// With the flusher stalled on a failing disk, a persist_to=1 write times
// out — and the client reports that Timeout, never OK.
TEST_P(DiskFaultTest, PersistToTimesOutWhileFlusherStalled) {
  storage::FaultyEnvOptions fopts;
  fopts.seed = GetParam();
  fopts.sync_fail_prob = 1.0;
  FaultyCluster fc(1, 0, fopts);

  client::SmartClient client(fc.cluster.get(), "default");
  fc.envs[0]->set_faults_enabled(true);

  client::WriteOptions wo;
  wo.durability.persist_to = 1;
  wo.durability.timeout_ms = 250;
  auto r = client.Upsert("pkey", "v1", wo);
  ASSERT_FALSE(r.ok()) << "persist_to=1 acked while the disk was failing";
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();

  // Heal; the same write persists for real.
  fc.envs[0]->set_faults_enabled(false);
  wo.durability.timeout_ms = 10000;
  auto r2 = client.Upsert("pkey", "v2", wo);
  EXPECT_TRUE(r2.ok()) << r2.status().ToString();
  fc.cluster->Quiesce();
}

// An unreadable region of a committed file is NOT a torn tail: warmup must
// propagate the I/O error (node stays down, operator retries) instead of
// recovering "successfully" with the committed data behind it discarded.
TEST_P(DiskFaultTest, WarmupReadFailurePropagatesInsteadOfHalfLoading) {
  storage::FaultyEnvOptions fopts;
  fopts.seed = GetParam();
  FaultyCluster fc(1, 0, fopts);

  client::SmartClient client(fc.cluster.get(), "default");
  client::WriteOptions wo;
  wo.durability.persist_to = 1;
  wo.durability.timeout_ms = 10000;
  auto r = client.Upsert("wkey", "v1", wo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  fc.cluster->Quiesce();

  ASSERT_TRUE(fc.cluster->CrashNode(0).ok());
  fc.envs[0]->FailNextReads(1);
  Status st = fc.cluster->RestartNode(0);
  EXPECT_FALSE(st.ok()) << "warmup swallowed a read error";
  EXPECT_FALSE(fc.cluster->node(0)->healthy());
  EXPECT_EQ(fc.envs[0]->stats().reads_failed, 1u);

  // The transient error cleared: the retried restart recovers everything.
  ASSERT_TRUE(fc.cluster->RestartNode(0).ok());
  auto got = client.Get("wkey");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->value, "v1");
}

// Full-workload storm: probabilistic append failures, torn appends, and
// sync failures on every node's disk while the torture workload runs. After
// the disks heal and the cluster settles, no acknowledged write is lost,
// replicas converge, and every key is reachable.
TEST_P(DiskFaultTest, AckedWritesSurviveDiskFaultStorm) {
  storage::FaultyEnvOptions fopts;
  fopts.seed = GetParam();
  fopts.append_fail_prob = 0.02;
  fopts.append_torn_prob = 0.01;
  fopts.sync_fail_prob = 0.05;
  FaultyCluster fc(3, 1, fopts);

  harness::TortureOptions topts;
  topts.seed = GetParam();
  topts.num_clients = 4;
  topts.ops_per_client = 120;
  topts.keys_per_client = 24;
  topts.persist_every = 6;
  harness::TortureDriver driver(fc.cluster.get(), "default", topts);

  fc.SetFaultsEnabled(true);
  driver.Run();
  fc.SetFaultsEnabled(false);
  driver.Settle();

  uint64_t injected = 0;
  for (auto& [id, fe] : fc.envs) {
    storage::FaultyEnvStats s = fe->stats();
    injected += s.appends_failed + s.syncs_failed;
  }
  EXPECT_GT(injected, 0u) << "storm injected nothing; raise the fault rates";

  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
}

// Storm + node crash: the crash lands while the victim's flusher is being
// fault-injected, so its disk holds torn tails from both the faults and the
// kill. Warmup must recover to the last good commit of every vBucket file —
// persist-acked writes are the durability floor, and committed state never
// regresses.
TEST_P(DiskFaultTest, PersistAckedWritesSurviveCrashDuringDiskFaults) {
  storage::FaultyEnvOptions fopts;
  fopts.seed = GetParam();
  fopts.append_fail_prob = 0.02;
  fopts.append_torn_prob = 0.02;
  fopts.sync_fail_prob = 0.05;
  FaultyCluster fc(3, 1, fopts);

  harness::TortureOptions topts;
  topts.seed = GetParam();
  topts.num_clients = 4;
  topts.ops_per_client = 120;
  topts.keys_per_client = 24;
  topts.persist_every = 4;
  harness::TortureDriver driver(fc.cluster.get(), "default", topts);

  fc.SetFaultsEnabled(true);
  std::thread crasher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(fc.cluster->CrashNode(0).ok());
    driver.NoteCrash();
  });
  driver.Run();
  crasher.join();

  // Heal the disks before warmup: recovery itself must run clean so the
  // test isolates what the faults did to the on-disk state.
  fc.SetFaultsEnabled(false);
  ASSERT_TRUE(fc.cluster->RestartNode(0).ok());
  driver.Settle();

  EXPECT_TRUE(driver.CheckAckedWritesDurable());
  EXPECT_TRUE(driver.CheckReplicaConvergence());
  EXPECT_TRUE(driver.CheckAllKeysReachable());
}

// Disk-fault runs converge deterministically: disk faults are absorbed by
// flusher retries and never reject front-end traffic, so two runs with the
// same seed end in the identical final KV state (the workload's last write
// per key). Unlike the transport determinism test, the injection SCHEDULE
// is not asserted — flusher batching is timing-dependent — only that the
// system converges to the same state regardless of where the faults land.
TEST_P(DiskFaultTest, SameSeedConvergesToSameStateDeterminism) {
  auto run_once = [](uint64_t seed) {
    storage::FaultyEnvOptions fopts;
    fopts.seed = seed;
    fopts.append_fail_prob = 0.03;
    fopts.sync_fail_prob = 0.05;
    FaultyCluster fc(3, 1, fopts);

    harness::TortureOptions topts;
    topts.seed = seed;
    topts.num_clients = 3;
    topts.ops_per_client = 80;
    topts.keys_per_client = 16;
    topts.persist_every = 8;
    harness::TortureDriver driver(fc.cluster.get(), "default", topts);

    fc.SetFaultsEnabled(true);
    driver.Run();
    fc.SetFaultsEnabled(false);
    driver.Settle();
    EXPECT_TRUE(driver.CheckAckedWritesDurable());
    return driver.StateFingerprint();
  };
  EXPECT_EQ(run_once(GetParam()), run_once(GetParam()))
      << "final KV state diverged across identical disk-fault runs";
}

// "seed<index>" instance names (instead of gtest's default value-derived
// ones) give CI a stable handle: the sanitizer jobs run the /seed0 instance
// of every torture scenario regardless of which seed values are listed.
INSTANTIATE_TEST_SUITE_P(Seeds, DiskFaultTest,
                         ::testing::Values(1, 20260807, 0xd15c),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace couchkv
