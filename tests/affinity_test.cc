// Affinity (common/affinity.h) behavioral suite. Meaningful only under
// -DCOUCHKV_AFFINITY=ON — in normal builds every case GTEST_SKIPs, and the
// inert-hooks case (which runs ONLY when affinity is off) proves the hooks
// really compile out rather than silently half-working.
//
// The tracker is process-global state, so each case uses uniquely named
// domains/checkers, and the fatal case runs inside EXPECT_DEATH: the child
// inherits the parent's registry but its new records die with it.
#include "common/affinity.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/synchronization.h"
#include "common/thread_pool.h"
#include "dcp/dcp.h"
#include "net/tcp_server.h"

namespace couchkv {
namespace {

#define SKIP_UNLESS_AFFINITY()                                        \
  do {                                                                \
    if (!affinity::kEnabled) {                                        \
      GTEST_SKIP() << "built without COUCHKV_AFFINITY; hooks are "    \
                      "no-ops";                                       \
    }                                                                 \
  } while (0)

// In a non-affinity build the whole API must be inert: every thread reads
// as "client", nothing is recorded, and the checkers never fire. This case
// runs ONLY when affinity is off.
TEST(AffinityTest, DisabledBuildHooksAreInert) {
  if (affinity::kEnabled) {
    GTEST_SKIP() << "built with COUCHKV_AFFINITY; inertness n/a";
  }
  EXPECT_STREQ(affinity::CurrentDomainName(), "client");
  affinity::ScopedDomain domain("affinity_test.never_registered");
  EXPECT_STREQ(affinity::CurrentDomainName(), "client");
  affinity::Affine checker{"affinity_test.inert", "affinity_test.other"};
  checker.AssertAffine();  // wrong domain, but a no-op build never aborts
  EXPECT_EQ(affinity::ViolationReports(), 0u);
  EXPECT_EQ(affinity::DumpJson(), "{}");
}

// A thread that never constructs a ScopedDomain runs in the implicit
// "client" domain; adoption is scoped and restores the previous domain.
TEST(AffinityTest, ScopedAdoptionNestsAndRestores) {
  SKIP_UNLESS_AFFINITY();
  EXPECT_STREQ(affinity::CurrentDomainName(), "client");
  {
    affinity::ScopedDomain outer("affinity_test.outer");
    EXPECT_STREQ(affinity::CurrentDomainName(), "affinity_test.outer");
    {
      affinity::ScopedDomain inner("affinity_test.inner");
      EXPECT_STREQ(affinity::CurrentDomainName(), "affinity_test.inner");
    }
    EXPECT_STREQ(affinity::CurrentDomainName(), "affinity_test.outer");
  }
  EXPECT_STREQ(affinity::CurrentDomainName(), "client");
}

// Silent negative control: accessing AFFINE_TO state from its declared
// domain must record nothing — the suite reaching the end of this test
// with zero violation reports is the assertion.
TEST(AffinityTest, DeclaredDomainAccessIsSilent) {
  SKIP_UNLESS_AFFINITY();
  const uint64_t before = affinity::ViolationReports();
  affinity::Affine checker{"affinity_test.silent", "affinity_test.owner_s"};
  affinity::ScopedDomain domain("affinity_test.owner_s");
  for (int i = 0; i < 100; ++i) checker.AssertAffine();
  EXPECT_EQ(affinity::ViolationReports(), before);
}

// Accessing AFFINE_TO state from the wrong domain aborts, and the report
// names BOTH the declared and the offending domain.
TEST(AffinityDeathTest, WrongDomainAccessAbortsNamingBothDomains) {
  SKIP_UNLESS_AFFINITY();
  // A lambda keeps the braced declarations (and their commas) out of the
  // EXPECT_DEATH macro argument list.
  auto access_from_wrong_domain = [] {
    affinity::Affine checker("affinity_test.dstate", "affinity_test.downer");
    affinity::ScopedDomain domain("affinity_test.dintruder");
    checker.AssertAffine();
  };
  EXPECT_DEATH(
      access_from_wrong_domain(),
      "\"affinity_test\\.dstate\" is declared affine to execution domain "
      "\"affinity_test\\.downer\"(.|\n)*\"affinity_test\\.dintruder\"");
}

// Observe mode downgrades the abort to a recorded violation with a
// readable last-report line, so a whole run can map true access domains.
TEST(AffinityTest, ObserveModeRecordsInsteadOfAborting) {
  SKIP_UNLESS_AFFINITY();
  const uint64_t before = affinity::ViolationReports();
  affinity::SetObserveMode(true);
  {
    affinity::Affine checker{"affinity_test.observed",
                             "affinity_test.owner_o"};
    affinity::ScopedDomain domain("affinity_test.intruder_o");
    checker.AssertAffine();  // would abort outside observe mode
  }
  affinity::SetObserveMode(false);
  EXPECT_EQ(affinity::ViolationReports(), before + 1);
  const std::string report = affinity::LastReport();
  EXPECT_NE(report.find("affinity_test.observed"), std::string::npos);
  EXPECT_NE(report.find("affinity_test.owner_o"), std::string::npos);
  EXPECT_NE(report.find("affinity_test.intruder_o"), std::string::npos);
}

// Every lock acquisition is attributed to the acquiring domain, exclusive
// and shared separately — the raw material for the lock-removal inventory.
TEST(AffinityTest, LockAcquisitionsMapToDomains) {
  SKIP_UNLESS_AFFINITY();
  Mutex m{"affinity_test.map_lock"};
  SharedMutex sm{"affinity_test.map_shared"};
  {
    affinity::ScopedDomain domain("affinity_test.map_domain");
    LockGuard lock(m);
    ReaderLockGuard rlock(sm);
  }
  const std::string dump = affinity::DumpJson();
  const size_t cls = dump.find("\"affinity_test.map_lock\"");
  ASSERT_NE(cls, std::string::npos);
  // The class's domain list must attribute the exclusive acquisition to
  // the adopted domain (the entry follows the class name in the JSON).
  const size_t dom = dump.find("\"affinity_test.map_domain\"", cls);
  ASSERT_NE(dom, std::string::npos);
  const size_t shared_cls = dump.find("\"affinity_test.map_shared\"");
  ASSERT_NE(shared_cls, std::string::npos);
  EXPECT_NE(dump.find("\"shared\": 1", shared_cls), std::string::npos);
}

// --- Spawn-site domain registration ---------------------------------------
// Each subsystem's spawn site must adopt its documented domain (the
// ScopedDomain at the top of the thread function). The dump's domain list
// is the observable: a domain appears with threads > 0 only after a thread
// actually adopted it.

bool DumpHasDomain(const std::string& name) {
  const std::string dump = affinity::DumpJson();
  const size_t pos = dump.find("\"" + name + "\"");
  if (pos == std::string::npos) return false;
  // {"name": "<domain>", "threads": N} — reject N == 0.
  const size_t threads = dump.find("\"threads\": ", pos);
  if (threads == std::string::npos) return false;
  return dump[threads + std::string("\"threads\": ").size()] != '0';
}

TEST(AffinitySpawnTest, ThreadPoolWorkersAdoptWorkerDomain) {
  SKIP_UNLESS_AFFINITY();
  ThreadPool pool(2);
  std::string seen;
  Mutex mu{"affinity_test.spawn_pool"};
  pool.Submit([&] {
    LockGuard lock(mu);
    seen = affinity::CurrentDomainName();
  });
  pool.Wait();
  EXPECT_EQ(seen, "thread_pool.worker");
  EXPECT_TRUE(DumpHasDomain("thread_pool.worker"));
}

TEST(AffinitySpawnTest, DcpDispatcherAdoptsProducerDomain) {
  SKIP_UNLESS_AFFINITY();
  {
    dcp::Dispatcher dispatcher;
    dispatcher.Stop();  // joins the pump thread: it ran and adopted
  }
  EXPECT_TRUE(DumpHasDomain("dcp.producer"));
}

TEST(AffinitySpawnTest, TcpServerLoopsAdoptNetDomains) {
  SKIP_UNLESS_AFFINITY();
  net::TcpServer server(
      [](const net::wire::Message& req, const net::RequestContext&) {
        net::wire::Message resp;
        resp.magic = net::wire::kMagicResponse;
        resp.opaque = req.opaque;
        return resp;
      });
  ASSERT_TRUE(server.Start().ok());
  // One real connection, closed immediately: its ConnLoop thread spawns,
  // sees EOF, and exits — enough to adopt (and count in) "net.conn".
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);
  while (server.connections_accepted() == 0) std::this_thread::yield();
  server.Stop();  // joins accept + conn threads
  EXPECT_TRUE(DumpHasDomain("net.accept"));
  EXPECT_TRUE(DumpHasDomain("net.conn"));
}

TEST(AffinitySpawnTest, BucketFlusherAdoptsStorageFlusherDomain) {
  SKIP_UNLESS_AFFINITY();
  {
    cluster::Cluster cluster;
    cluster.AddNode(cluster::kAllServices);
    cluster::BucketConfig config;
    config.name = "affinity-spawn";
    config.num_replicas = 0;
    ASSERT_TRUE(cluster.CreateBucket(config).ok());
  }  // teardown joins every flusher: they ran and adopted
  EXPECT_TRUE(DumpHasDomain("storage.flusher"));
}

}  // namespace
}  // namespace couchkv
