// Unit tests for the N1QL planner: access-path selection, sargable range
// extraction, covering detection, partial-index implication, LIMIT
// pushdown eligibility — all without a live cluster.
#include <gtest/gtest.h>

#include "n1ql/parser.h"
#include "n1ql/planner.h"

namespace couchkv::n1ql {
namespace {

using json::Value;

SelectStatement Parse(const std::string& q) {
  auto stmt = ParseStatement(q);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return stmt->select;
}

gsi::IndexDefinition Index(const std::string& name,
                           std::vector<std::string> paths,
                           bool primary = false) {
  gsi::IndexDefinition def;
  def.name = name;
  def.bucket = "b";
  def.key_paths = std::move(paths);
  def.is_primary = primary;
  return def;
}

TEST(PlannerTest, UseKeysAlwaysWins) {
  auto stmt = Parse("SELECT * FROM b USE KEYS 'k' WHERE age = 1");
  auto plan = PlanSelect(stmt, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.kind, ScanKind::kKeyScan);
}

TEST(PlannerTest, NoFromIsNoScan) {
  auto stmt = Parse("SELECT 1");
  auto plan = PlanSelect(stmt, {}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.kind, ScanKind::kNoScan);
}

TEST(PlannerTest, NoIndexesIsPlanError) {
  auto stmt = Parse("SELECT * FROM b WHERE age = 1");
  auto plan = PlanSelect(stmt, {}, {});
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kPlanError);
}

TEST(PlannerTest, EqualityProducesPointRange) {
  auto stmt = Parse("SELECT age FROM b WHERE age = 30");
  auto plan = PlanSelect(stmt, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.kind, ScanKind::kIndexScan);
  ASSERT_TRUE(plan->scan.range.lo.has_value());
  ASSERT_TRUE(plan->scan.range.hi.has_value());
  EXPECT_EQ(plan->scan.range.lo->AsInt(), 30);
  EXPECT_EQ(plan->scan.range.hi->AsInt(), 30);
}

TEST(PlannerTest, RangePredicatesCombineBounds) {
  auto stmt = Parse("SELECT age FROM b WHERE age >= 10 AND age < 20");
  auto plan = PlanSelect(stmt, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.range.lo->AsInt(), 10);
  EXPECT_TRUE(plan->scan.range.lo_inclusive);
  EXPECT_EQ(plan->scan.range.hi->AsInt(), 20);
  EXPECT_FALSE(plan->scan.range.hi_inclusive);
  EXPECT_TRUE(plan->scan.where_consumed);
}

TEST(PlannerTest, FlippedComparisonNormalized) {
  // 10 <= age  ==>  age >= 10
  auto stmt = Parse("SELECT age FROM b WHERE 10 <= age");
  auto plan = PlanSelect(stmt, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.kind, ScanKind::kIndexScan);
  EXPECT_EQ(plan->scan.range.lo->AsInt(), 10);
}

TEST(PlannerTest, ParameterBoundsResolved) {
  auto stmt = Parse("SELECT age FROM b WHERE age > $1");
  auto plan = PlanSelect(stmt, {Index("by_age", {"age"})}, {Value::Int(42)});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.range.lo->AsInt(), 42);
  EXPECT_FALSE(plan->scan.range.lo_inclusive);
}

TEST(PlannerTest, CoveringDetection) {
  auto covered = Parse("SELECT age FROM b WHERE age > 5 ORDER BY age");
  auto plan = PlanSelect(covered, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->scan.covering);

  auto uncovered = Parse("SELECT age, name FROM b WHERE age > 5");
  plan = PlanSelect(uncovered, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->scan.covering);

  auto star = Parse("SELECT * FROM b WHERE age > 5");
  plan = PlanSelect(star, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->scan.covering);
}

TEST(PlannerTest, CompositeIndexCoversSecondKey) {
  auto stmt = Parse("SELECT city FROM b WHERE age = 30");
  auto plan = PlanSelect(stmt, {Index("by_age_city", {"age", "city"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.kind, ScanKind::kIndexScan);
  EXPECT_TRUE(plan->scan.covering);
}

TEST(PlannerTest, MetaIdCoveredByIndexScan) {
  // meta().id rides along with every index entry.
  auto stmt = Parse("SELECT META(b).id, age FROM b WHERE age = 1");
  auto plan = PlanSelect(stmt, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->scan.covering);
}

TEST(PlannerTest, PartialIndexRequiresPredicateRestated) {
  gsi::IndexDefinition partial = Index("over21", {"age"});
  auto where = ParseExpression("(age > 21)").value();
  partial.where_text = where->ToString();

  auto with = Parse("SELECT age FROM b WHERE age > 21 AND age = 30");
  auto plan = PlanSelect(with, {partial}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.index_name, "over21");

  auto without = Parse("SELECT age FROM b WHERE age = 30");
  EXPECT_FALSE(PlanSelect(without, {partial}, {}).ok());
}

TEST(PlannerTest, PrimaryFallbackForUnsargablePredicate) {
  auto stmt = Parse("SELECT name FROM b WHERE LOWER(name) = 'x'");
  auto plan = PlanSelect(
      stmt, {Index("by_age", {"age"}), Index("#primary", {}, true)}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.kind, ScanKind::kPrimaryScan);
  EXPECT_FALSE(plan->scan.where_consumed);
}

TEST(PlannerTest, MetaIdRangeOnPrimary) {
  auto stmt = Parse("SELECT META(b).id FROM b WHERE META(b).id >= 'user1'");
  auto plan = PlanSelect(stmt, {Index("#primary", {}, true)}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.kind, ScanKind::kPrimaryScan);
  ASSERT_TRUE(plan->scan.range.lo.has_value());
  EXPECT_EQ(plan->scan.range.lo->AsString(), "user1");
  EXPECT_TRUE(plan->scan.where_consumed);  // LIMIT pushdown eligible
}

TEST(PlannerTest, ResidualPredicateBlocksPushdown) {
  auto stmt = Parse("SELECT age FROM b WHERE age > 5 AND name = 'x'");
  auto plan = PlanSelect(stmt, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.kind, ScanKind::kIndexScan);
  EXPECT_FALSE(plan->scan.where_consumed);
}

TEST(PlannerTest, EqualityPreferredOverRangeIndex) {
  auto stmt = Parse("SELECT x FROM b WHERE age = 1 AND height > 2");
  auto plan = PlanSelect(
      stmt, {Index("by_height", {"height"}), Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.index_name, "by_age");  // equality scores higher
}

TEST(PlannerTest, AggregatesDetected) {
  auto stmt = Parse("SELECT COUNT(*), MAX(age) FROM b WHERE age > 0");
  auto plan = PlanSelect(stmt, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->has_aggregates);
  EXPECT_EQ(plan->aggregate_exprs.size(), 2u);
}

TEST(PlannerTest, AliasQualifiedPathsMatchIndex) {
  auto stmt = Parse("SELECT p.age FROM b AS p WHERE p.age = 5");
  auto plan = PlanSelect(stmt, {Index("by_age", {"age"})}, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.kind, ScanKind::kIndexScan);
  EXPECT_TRUE(plan->scan.covering);
}

TEST(PlannerTest, RelativePathText) {
  auto expr = ParseExpression("p.addr.city").value();
  EXPECT_EQ(RelativePathText(*expr, "p").value(), "addr.city");
  EXPECT_EQ(RelativePathText(*expr, "q").value(), "p.addr.city");
  auto idx = ParseExpression("p.tags[0]").value();
  EXPECT_EQ(RelativePathText(*idx, "p").value(), "tags[0]");
  auto lit = ParseExpression("42").value();
  EXPECT_FALSE(RelativePathText(*lit, "p").has_value());
}

}  // namespace
}  // namespace couchkv::n1ql
