// Unit tests for the common substrate: Status, CRC32, clock, RNG/zipfian,
// histogram, thread pool.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/clock.h"
#include "common/crc32.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace couchkv {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing doc");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing doc");
}

TEST(StatusTest, AllFactoryCodesDistinct) {
  std::vector<Status> all = {
      Status::NotFound(),       Status::KeyExists(),
      Status::Locked(),         Status::NotMyVBucket(),
      Status::TempFail(),       Status::Timeout(),
      Status::InvalidArgument("x"), Status::ParseError("x"),
      Status::PlanError("x"),   Status::IOError("x"),
      Status::Corruption("x"),  Status::Unsupported("x"),
      Status::Aborted(),        Status::Internal("x")};
  std::set<StatusCode> codes;
  for (const auto& s : all) codes.insert(s.code());
  EXPECT_EQ(codes.size(), all.size());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::Timeout();
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsTimeout());
}

TEST(Crc32Test, KnownVectors) {
  // CRC32C("123456789") = 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string data = "hello, couchbase world";
  uint32_t whole = Crc32(data);
  uint32_t part = Crc32(data.substr(0, 7));
  part = Crc32(data.substr(7), part);
  EXPECT_EQ(whole, part);
}

TEST(Crc32Test, DifferentKeysSpreadOverVBuckets) {
  std::set<uint32_t> vbuckets;
  for (int i = 0; i < 10000; ++i) {
    vbuckets.insert(Crc32("user::" + std::to_string(i)) % 1024);
  }
  // CRC32 should hit nearly all 1024 partitions with 10k keys.
  EXPECT_GT(vbuckets.size(), 1000u);
}

TEST(ClockTest, RealClockAdvances) {
  Clock* c = Clock::Real();
  uint64_t a = c->NowNanos();
  uint64_t b = c->NowNanos();
  EXPECT_GE(b, a);
}

TEST(ClockTest, ManualClockControls) {
  ManualClock c(1000);
  EXPECT_EQ(c.NowNanos(), 1000u);
  c.AdvanceSeconds(2);
  EXPECT_EQ(c.NowSeconds(), 2u);
  c.AdvanceMillis(500);
  EXPECT_EQ(c.NowMillis(), 2500u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfianTest, ValuesInRange) {
  Rng rng(3);
  ZipfianGenerator zipf(1000);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfianTest, SkewedTowardLowRanks) {
  Rng rng(4);
  ZipfianGenerator zipf(10000, 0.99);
  int low = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Next(rng) < 100) ++low;  // hottest 1% of items
  }
  // With theta=0.99, the top 1% of items should receive far more than 1%
  // of accesses (typically >30%).
  EXPECT_GT(low, kDraws / 10);
}

TEST(ScrambledZipfianTest, ScattersHotKeys) {
  Rng rng(5);
  ScrambledZipfianGenerator gen(10000);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen.Next(rng));
  // Hot items are hashed across the space, so we still see many distinct
  // values but they are not clustered at 0.
  EXPECT_GT(seen.size(), 50u);
  EXPECT_GT(*seen.rbegin(), 5000u);
}

TEST(HistogramTest, CountSumMean) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 600u);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (uint64_t i = 1; i <= 10000; ++i) h.Record(i * 1000);
  uint64_t p50 = h.Percentile(0.50);
  uint64_t p95 = h.Percentile(0.95);
  uint64_t p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // ~4% bucket resolution: p50 should be near 5ms.
  EXPECT_NEAR(static_cast<double>(p50), 5e6, 5e5);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.sum(), 30u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(1);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, SnapshotIsConsistentCopy) {
  Histogram h;
  h.Record(100);
  h.Record(1000);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 1100u);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  // The snapshot is decoupled: later records don't change it.
  h.Record(5000);
  EXPECT_EQ(snap.count, 2u);
}

TEST(HistogramTest, SnapshotSubtractGivesInterval) {
  Histogram h;
  h.Record(100);
  HistogramSnapshot before = h.Snapshot();
  h.Record(100);
  h.Record(200);
  HistogramSnapshot after = h.Snapshot();
  after.Subtract(before);
  EXPECT_EQ(after.count, 2u);
  EXPECT_EQ(after.sum, 300u);
}

TEST(HistogramTest, SubtractClampsAtZero) {
  Histogram a, b;
  a.Record(100);
  b.Record(100);
  b.Record(100);
  HistogramSnapshot snap = a.Snapshot();
  snap.Subtract(b.Snapshot());  // "earlier" is larger: clamp, don't wrap
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.Percentile(0.5), 0u);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);  // empty
  h.Record(1000);
  // A single sample: every quantile lands in its bucket, including the
  // out-of-range ones (clamped to [0, 1]).
  uint64_t p = h.Percentile(0.5);
  EXPECT_GE(p, Histogram::BucketLow(Histogram::BucketFor(1000)));
  EXPECT_EQ(h.Percentile(-1.0), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(2.0), h.Percentile(1.0));
  // p100 of a single-bucket histogram must not interpolate past the bucket.
  EXPECT_LE(h.Percentile(1.0),
            Histogram::BucketLow(Histogram::BucketFor(1000) + 1));
}

TEST(HistogramTest, BucketGeometryMonotone) {
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  int prev = 0;
  for (uint64_t v = 1; v < (1ull << 40); v *= 7) {
    int idx = Histogram::BucketFor(v);
    EXPECT_GE(idx, prev);
    EXPECT_LT(idx, Histogram::kNumBuckets);
    EXPECT_LE(Histogram::BucketLow(idx), v);
    prev = idx;
  }
}

TEST(HistogramTest, SnapshotMergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(20);
  HistogramSnapshot sa = a.Snapshot();
  sa.Merge(b.Snapshot());
  EXPECT_EQ(sa.count, 2u);
  EXPECT_EQ(sa.sum, 30u);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    count.fetch_add(1);
    pool.Submit([&] { count.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace couchkv
