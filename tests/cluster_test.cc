// Tests for the cluster layer: vBucket mapping, bucket/flusher behaviour,
// replication, durability, orchestrator election, rebalance, failover.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "cluster/health_monitor.h"
#include "cluster/vbucket.h"
#include "cluster/vbucket_map.h"
#include "common/clock.h"
#include "net/faulty_transport.h"
#include "stats/registry.h"

namespace couchkv::cluster {
namespace {

// Current value of a counter in the process-wide "cluster" stats scope.
// Tests compare deltas because the registry is shared across all tests in
// this binary.
uint64_t ClusterCounter(const std::string& name) {
  return stats::Registry::Global().GetScope("cluster")->GetCounter(name)
      ->Value();
}

// --- VBucketMap ---

TEST(VBucketMapTest, KeyHashingMatchesCrc32) {
  EXPECT_EQ(KeyToVBucket("user::123"), Crc32("user::123") % kNumVBuckets);
}

TEST(VBucketMapTest, BalancedMapCoversAllVBuckets) {
  ClusterMap map = BuildBalancedMap({0, 1, 2, 3}, 1, 1);
  for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
    const auto& e = map.entries[vb];
    EXPECT_NE(e.active, kNoNode);
    ASSERT_EQ(e.replicas.size(), 1u);
    EXPECT_NE(e.replicas[0], e.active);
  }
}

TEST(VBucketMapTest, BalancedMapIsEven) {
  ClusterMap map = BuildBalancedMap({0, 1, 2, 3}, 1, 1);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(map.CountActive(n), kNumVBuckets / 4);
  }
}

TEST(VBucketMapTest, ReplicaCountClampedToNodes) {
  ClusterMap map = BuildBalancedMap({0, 1}, 3, 1);
  EXPECT_EQ(map.entries[0].replicas.size(), 1u);  // only 1 other node
}

TEST(VBucketMapTest, ThreeReplicasDistinctNodes) {
  ClusterMap map = BuildBalancedMap({0, 1, 2, 3, 4}, 3, 1);
  for (uint16_t vb = 0; vb < kNumVBuckets; vb += 97) {
    const auto& e = map.entries[vb];
    std::set<NodeId> owners(e.replicas.begin(), e.replicas.end());
    owners.insert(e.active);
    EXPECT_EQ(owners.size(), 4u);
  }
}

// --- VBucket ---

// Regression: the rebalance switchover drains the last deltas by pumping the
// DCP producer inside WithOpLock, and the producer's backfill callback reads
// the stream's vBucket file via file(). file() must therefore never acquire
// op_mu_ — an earlier rewrite routed it through the op lock and the
// switchover self-deadlocked whenever a stream still needed backfill. With
// the pointer on its own leaf lock this returns; before, it hung forever.
TEST(VBucketTest, FileIsReadableWhileOpLockHeld) {
  VBucket vb(0, VBucketState::kActive, Clock::Real(),
             kv::EvictionPolicy::kValueOnly);
  storage::CouchFile* seen = reinterpret_cast<storage::CouchFile*>(1);
  vb.WithOpLock([&] { seen = vb.file(); });
  EXPECT_EQ(seen, nullptr);  // no file attached; the point is it returned
}

// --- Cluster fixture ---

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) cluster_.AddNode();
    BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
  }

  // Writes through the data service directly (no smart client).
  StatusOr<kv::DocMeta> Write(const std::string& key,
                              const std::string& value) {
    uint16_t vb = KeyToVBucket(key);
    NodeId active = cluster_.map("default")->ActiveFor(vb);
    return cluster_.node(active)->Set("default", vb, key, value, 0, 0, 0);
  }

  StatusOr<kv::GetResult> Read(const std::string& key) {
    uint16_t vb = KeyToVBucket(key);
    NodeId active = cluster_.map("default")->ActiveFor(vb);
    return cluster_.node(active)->Get("default", vb, key);
  }

  Cluster cluster_;
};

TEST_F(ClusterTest, WriteAndReadThroughActiveNode) {
  ASSERT_TRUE(Write("k1", "{\"a\":1}").ok());
  auto r = Read("k1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.value, "{\"a\":1}");
}

TEST_F(ClusterTest, WrongNodeReturnsNotMyVBucket) {
  uint16_t vb = KeyToVBucket("k1");
  NodeId active = cluster_.map("default")->ActiveFor(vb);
  NodeId wrong = (active + 1) % 4;
  // The wrong node hosts this vb as replica or dead, never active.
  auto r = cluster_.node(wrong)->Set("default", vb, "k1", "v", 0, 0, 0);
  EXPECT_TRUE(r.status().IsNotMyVBucket());
}

TEST_F(ClusterTest, OrchestratorIsLowestHealthyNode) {
  EXPECT_EQ(cluster_.orchestrator(), 0u);
  cluster_.node(0)->set_healthy(false);
  EXPECT_EQ(cluster_.orchestrator(), 1u);
  cluster_.node(0)->set_healthy(true);
  EXPECT_EQ(cluster_.orchestrator(), 0u);
}

TEST_F(ClusterTest, MutationsReplicateAsynchronously) {
  ASSERT_TRUE(Write("k1", "v1").ok());
  cluster_.Quiesce();
  uint16_t vb = KeyToVBucket("k1");
  auto map = cluster_.map("default");
  NodeId replica = map->ReplicasFor(vb)[0];
  std::shared_ptr<Bucket> rb = cluster_.node(replica)->bucket("default");
  auto r = rb->vbucket(vb)->hash_table().Get("k1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.value, "v1");
}

TEST_F(ClusterTest, ReplicaRejectsFrontEndOps) {
  uint16_t vb = KeyToVBucket("k1");
  NodeId replica = cluster_.map("default")->ReplicasFor(vb)[0];
  auto r = cluster_.node(replica)->Get("default", vb, "k1");
  EXPECT_TRUE(r.status().IsNotMyVBucket());
}

TEST_F(ClusterTest, FlusherPersistsAsynchronously) {
  auto meta = Write("k1", "v1");
  ASSERT_TRUE(meta.ok());
  cluster_.Quiesce();
  uint16_t vb = KeyToVBucket("k1");
  NodeId active = cluster_.map("default")->ActiveFor(vb);
  std::shared_ptr<Bucket> b = cluster_.node(active)->bucket("default");
  EXPECT_GE(b->vbucket(vb)->persisted_seqno(), meta->seqno);
  // The document is now on "disk".
  auto doc = b->vbucket(vb)->file()->Get("k1");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->value, "v1");
}

TEST_F(ClusterTest, DurabilityReplicateTo) {
  auto meta = Write("k1", "v1");
  ASSERT_TRUE(meta.ok());
  Status st = cluster_.WaitForDurability("default", KeyToVBucket("k1"),
                                         meta->seqno, Durability::Replicate(1));
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(ClusterTest, DurabilityPersistTo) {
  auto meta = Write("k1", "v1");
  ASSERT_TRUE(meta.ok());
  Status st = cluster_.WaitForDurability("default", KeyToVBucket("k1"),
                                         meta->seqno, Durability::Persist(1));
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(ClusterTest, DurabilityTimesOutWhenImpossible) {
  auto meta = Write("k1", "v1");
  ASSERT_TRUE(meta.ok());
  Durability dur;
  dur.replicate_to = 3;  // only 1 replica configured
  dur.timeout_ms = 50;
  Status st = cluster_.WaitForDurability("default", KeyToVBucket("k1"),
                                         meta->seqno, dur);
  EXPECT_TRUE(st.IsTimeout());
}

TEST_F(ClusterTest, FailoverPromotesReplicas) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Write("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  cluster_.Quiesce();

  NodeId victim = 2;
  ASSERT_TRUE(cluster_.Failover(victim).ok());
  auto map = cluster_.map("default");
  // No vBucket is active on the failed node.
  for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
    EXPECT_NE(map->ActiveFor(vb), victim);
    EXPECT_NE(map->ActiveFor(vb), kNoNode);
  }
  // All data remains readable from promoted replicas.
  for (int i = 0; i < 200; ++i) {
    auto r = Read("key" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "key" << i;
    EXPECT_EQ(r->doc.value, "v" + std::to_string(i));
  }
}

TEST_F(ClusterTest, FailedNodeRefusesRequests) {
  ASSERT_TRUE(cluster_.Failover(1).ok());
  auto r = cluster_.node(1)->Get("default", 0, "k");
  EXPECT_TRUE(r.status().IsTempFail());
}

TEST_F(ClusterTest, RebalanceAfterAddNodeMovesVBuckets) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(Write("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  cluster_.Quiesce();

  NodeId n4 = cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  EXPECT_GT(cluster_.total_vbucket_moves(), 0u);

  auto map = cluster_.map("default");
  // The new node now owns ~1/5 of the active partitions.
  size_t on_new = map->CountActive(n4);
  EXPECT_NEAR(static_cast<double>(on_new), kNumVBuckets / 5.0,
              kNumVBuckets / 20.0);
  // All data survives and routes correctly.
  for (int i = 0; i < 300; ++i) {
    auto r = Read("key" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "key" << i << ": " << r.status().ToString();
    EXPECT_EQ(r->doc.value, "v" + std::to_string(i));
  }
}

TEST_F(ClusterTest, RebalanceKeepsReplicationWorking) {
  cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  ASSERT_TRUE(Write("post-rebalance", "v").ok());
  cluster_.Quiesce();
  uint16_t vb = KeyToVBucket("post-rebalance");
  auto map = cluster_.map("default");
  ASSERT_FALSE(map->ReplicasFor(vb).empty());
  NodeId replica = map->ReplicasFor(vb)[0];
  auto r = cluster_.node(replica)
               ->bucket("default")
               ->vbucket(vb)
               ->hash_table()
               .Get("post-rebalance");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.value, "v");
}

TEST_F(ClusterTest, MapVersionIncreasesOnTopologyChange) {
  uint64_t v0 = cluster_.map("default")->version;
  cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  EXPECT_GT(cluster_.map("default")->version, v0);
}

TEST_F(ClusterTest, MdsNodeWithoutDataServiceHostsNoBuckets) {
  Cluster c;
  c.AddNode(kDataService);
  NodeId query_only = c.AddNode(kQueryService);
  BucketConfig cfg;
  cfg.name = "b";
  cfg.num_replicas = 0;
  ASSERT_TRUE(c.CreateBucket(cfg).ok());
  EXPECT_EQ(c.node(query_only)->bucket("b"), nullptr);
  auto r = c.node(query_only)->Get("b", 0, "k");
  EXPECT_FALSE(r.ok());
}

TEST_F(ClusterTest, CompactionReducesFragmentation) {
  // Hammer one key so its vBucket file is nearly all stale versions. Each
  // write waits for persistence so the disk-queue dedup cannot collapse the
  // versions into a single disk write.
  std::string key = "hot";
  uint16_t vb = KeyToVBucket(key);
  NodeId active = cluster_.map("default")->ActiveFor(vb);
  std::shared_ptr<Bucket> b = cluster_.node(active)->bucket("default");
  for (int i = 0; i < 50; ++i) {
    auto meta = Write(key, std::string(256, 'x') + std::to_string(i));
    ASSERT_TRUE(meta.ok());
    ASSERT_TRUE(b->WaitForPersistence(vb, meta->seqno, 5000).ok());
  }
  cluster_.Quiesce();
  EXPECT_GT(b->vbucket(vb)->file()->Fragmentation(), 0.5);
  size_t compacted = b->MaybeCompact();
  EXPECT_GE(compacted, 1u);
  EXPECT_LT(b->vbucket(vb)->file()->Fragmentation(), 0.5);
  auto r = Read(key);
  ASSERT_TRUE(r.ok());
}

TEST_F(ClusterTest, QuotaEnforcementEvicts) {
  Cluster c;
  c.AddNode();
  BucketConfig cfg;
  cfg.name = "small";
  cfg.num_replicas = 0;
  cfg.memory_quota_bytes = 1 << 20;  // 1 MiB
  ASSERT_TRUE(c.CreateBucket(cfg).ok());
  std::shared_ptr<Bucket> b = c.node(0)->bucket("small");
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k" + std::to_string(i);
    uint16_t vb = KeyToVBucket(key);
    ASSERT_TRUE(
        c.node(0)->Set("small", vb, key, std::string(2048, 'v'), 0, 0, 0).ok());
  }
  c.Quiesce();  // persist so values are clean and evictable
  ASSERT_GT(b->mem_used(), cfg.memory_quota_bytes);
  uint64_t reclaimed = b->EnforceQuota();
  EXPECT_GT(reclaimed, 0u);
}

TEST_F(ClusterTest, CrashNodeRefusesRequestsUntilRestart) {
  ASSERT_TRUE(Write("k1", "v1").ok());
  cluster_.Quiesce();  // persist + replicate before the crash
  uint16_t vb = KeyToVBucket("k1");
  NodeId active = cluster_.map("default")->ActiveFor(vb);

  ASSERT_TRUE(cluster_.CrashNode(active).ok());
  auto r = cluster_.node(active)->Get("default", vb, "k1");
  EXPECT_TRUE(r.status().IsTempFail()) << r.status().ToString();
  // Unlike Failover, the map still names the crashed node as active.
  EXPECT_EQ(cluster_.map("default")->ActiveFor(vb), active);

  ASSERT_TRUE(cluster_.RestartNode(active).ok());
  auto after = Read("k1");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->doc.value, "v1");
}

TEST_F(ClusterTest, RestartedNodeRecoversOnlyCommittedWrites) {
  // Persisted write -> survives. Memory-only write -> lost by the crash,
  // and the replica that received it over DCP is rolled back to match.
  ASSERT_TRUE(Write("durable", "kept").ok());
  cluster_.Quiesce();
  uint16_t vb = KeyToVBucket("durable");
  NodeId active = cluster_.map("default")->ActiveFor(vb);
  ASSERT_TRUE(cluster_.CrashNode(active).ok());
  ASSERT_TRUE(cluster_.RestartNode(active).ok());
  cluster_.Quiesce();

  auto r = Read("durable");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.value, "kept");
  // Replica converged on the recovered active.
  NodeId replica = cluster_.map("default")->ReplicasFor(vb)[0];
  auto rr = cluster_.node(replica)->bucket("default")->vbucket(vb)
                ->hash_table().Get("durable");
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr->doc.value, "kept");
}

TEST_F(ClusterTest, RebalanceUnderFaultyTransport) {
  // Clients keep writing and reading while a node joins and the cluster
  // rebalances over a lossy, laggy network. NOT_MY_VBUCKET answers and
  // dropped messages are retried by the smart client; when the dust
  // settles, every acknowledged key must be reachable.
  net::FaultyTransport transport(12345);
  net::LinkFaults lossy;
  lossy.drop = 0.05;
  lossy.max_latency_us = 30;
  transport.SetDefaultFaults(lossy);
  cluster_.set_transport(&transport);

  std::atomic<bool> stop{false};
  std::atomic<int> write_failures{0};
  std::vector<std::vector<std::string>> acked(3);
  std::vector<std::thread> workers;
  for (int c = 0; c < 3; ++c) {
    workers.emplace_back([&, c] {
      client::SmartClient client(&cluster_, "default", {},
                                 /*client_id=*/100 + c);
      // At least one full pass over this client's 40 keys, then keep the
      // load up until the rebalance finishes.
      for (int i = 0; i < 40 || !stop.load(); ++i) {
        std::string key = "rb-c" + std::to_string(c) + "-" +
                          std::to_string(i % 40);
        if (client.Upsert(key, "v" + std::to_string(i)).ok()) {
          if (i < 40) acked[c].push_back(key);
        } else {
          write_failures.fetch_add(1);
        }
        (void)client.Get(key);
      }
    });
  }

  NodeId added = cluster_.AddNode();
  Status st = cluster_.Rebalance();
  stop.store(true);
  for (auto& w : workers) w.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(cluster_.map("default")->CountActive(added), 0u);
  EXPECT_GT(transport.stats().dropped, 0u);

  // Settle on a clean network, then verify reachability of every key that
  // was acked during the storm: zero unreachable keys.
  transport.Reset();
  cluster_.Quiesce();
  client::SmartClient checker(&cluster_, "default", {}, /*client_id=*/99);
  int unreachable = 0;
  for (const auto& keys : acked) {
    for (const std::string& key : keys) {
      if (!checker.Get(key).ok()) ++unreachable;
    }
  }
  EXPECT_EQ(unreachable, 0);
  cluster_.set_transport(nullptr);
}

// --- Failover semantics (paper §4.3.1) ---

TEST_F(ClusterTest, FailoverIsIdempotent) {
  ASSERT_TRUE(cluster_.Failover(2).ok());
  EXPECT_TRUE(cluster_.failed_over(2));
  Status again = cluster_.Failover(2);
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument) << again.ToString();
  // The duplicate call changed nothing: still exactly one failed-over node.
  EXPECT_TRUE(cluster_.failed_over(2));
  EXPECT_EQ(cluster_.member_ids().size(), 3u);
}

TEST_F(ClusterTest, FailoverPromotesFreshestReplicaBySeqno) {
  BucketConfig cfg;
  cfg.name = "wide";
  cfg.num_replicas = 2;
  ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());

  const std::string key = "seqno-key";
  uint16_t vb = KeyToVBucket(key);
  NodeId active = cluster_.map("wide")->ActiveFor(vb);
  std::vector<NodeId> replicas = cluster_.map("wide")->ReplicasFor(vb);
  ASSERT_EQ(replicas.size(), 2u);

  // Baseline write reaches both replicas over a clean network.
  ASSERT_TRUE(cluster_.node(active)->Set("wide", vb, key, "v1", 0, 0, 0).ok());
  cluster_.Quiesce();

  // Stall replication to the chain-first replica only; the chain-second
  // replica keeps receiving and ends up with the higher seqno.
  net::FaultyTransport transport(7);
  cluster_.set_transport(&transport);
  transport.Block(net::Endpoint::Node(active),
                  net::Endpoint::Node(replicas[0]));
  StatusOr<kv::DocMeta> last = Status::NotFound("no write yet");
  for (int i = 2; i <= 5; ++i) {
    last = cluster_.node(active)->Set("wide", vb, key,
                                      "v" + std::to_string(i), 0, 0, 0);
    ASSERT_TRUE(last.ok());
  }
  ASSERT_TRUE(cluster_
                  .WaitForDurability("wide", vb, last->seqno,
                                     Durability::Replicate(1))
                  .ok());

  // Chain order would promote replicas[0] (stuck at v1). Seqno-aware
  // promotion must pick the replica that actually holds the acked writes.
  ASSERT_TRUE(cluster_.Failover(active).ok());
  EXPECT_EQ(cluster_.map("wide")->ActiveFor(vb), replicas[1]);
  auto r = cluster_.node(replicas[1])->Get("wide", vb, key);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->doc.value, "v5");

  // Drain the catch-up replication before the transport goes out of scope:
  // a DCP pump caught mid-Call must not outlive it.
  transport.HealAll();
  cluster_.Quiesce();
  cluster_.set_transport(nullptr);
}

TEST_F(ClusterTest, AutoFailoverVetoedWhenLastCopyWouldVanish) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(Write("av" + std::to_string(i), "v").ok());
  }
  cluster_.Quiesce();
  // First failover empties the replica chain of every vBucket the victim
  // replicated: their new actives are now the last copies.
  ASSERT_TRUE(cluster_.Failover(3).ok());
  auto map = cluster_.map("default");
  NodeId last_copy = kNoNode;
  for (uint16_t vb = 0; vb < kNumVBuckets && last_copy == kNoNode; ++vb) {
    const auto& e = map->entries[vb];
    if (e.replicas.empty() && e.active != kNoNode) last_copy = e.active;
  }
  ASSERT_NE(last_copy, kNoNode);

  uint64_t vetoed0 = ClusterCounter("failover.vetoed");
  uint64_t version0 = map->version;
  Status st = cluster_.Failover(last_copy, FailoverMode::kAuto);
  EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
  EXPECT_EQ(ClusterCounter("failover.vetoed"), vetoed0 + 1);
  // The veto left the cluster untouched: node still a healthy member, map
  // unchanged.
  EXPECT_FALSE(cluster_.failed_over(last_copy));
  EXPECT_TRUE(cluster_.node(last_copy)->healthy());
  EXPECT_EQ(cluster_.map("default")->version, version0);
}

TEST_F(ClusterTest, ManualFailoverToZeroCopiesThenRecoverNodeResurrects) {
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(Write("rz" + std::to_string(i), "val" + std::to_string(i))
                    .ok());
  }
  cluster_.Quiesce();
  ASSERT_TRUE(cluster_.Failover(3).ok());

  // Find a key whose vBucket now has a single remaining copy.
  auto map = cluster_.map("default");
  std::string key;
  uint16_t vb = 0;
  NodeId owner = kNoNode;
  for (int i = 0; i < 80 && owner == kNoNode; ++i) {
    std::string cand = "rz" + std::to_string(i);
    const auto& e = map->entries[KeyToVBucket(cand)];
    if (e.replicas.empty() && e.active != kNoNode) {
      key = cand;
      vb = KeyToVBucket(cand);
      owner = e.active;
    }
  }
  ASSERT_NE(owner, kNoNode);

  // Manual failover honors the admin's judgment and accepts the loss: the
  // vBucket drops to zero copies.
  ASSERT_TRUE(cluster_.Failover(owner, FailoverMode::kManual).ok());
  EXPECT_EQ(cluster_.map("default")->ActiveFor(vb), kNoNode);

  // Delta recovery resurrects the orphaned vBucket with its data intact —
  // the failed-over node never lost its copy.
  ASSERT_TRUE(cluster_.RecoverNode(owner).ok());
  EXPECT_FALSE(cluster_.failed_over(owner));
  cluster_.Quiesce();
  EXPECT_NE(cluster_.map("default")->ActiveFor(vb), kNoNode);
  auto r = Read(key);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->doc.value, "val" + key.substr(2));
}

TEST_F(ClusterTest, OrchestratorAdvancesWhenLowestNodeFailsOver) {
  ASSERT_EQ(cluster_.orchestrator(), 0u);
  ASSERT_TRUE(cluster_.Failover(0).ok());
  // The next-lowest healthy member takes over master services.
  EXPECT_EQ(cluster_.orchestrator(), 1u);
  EXPECT_EQ(cluster_.map("default")->CountActive(0), 0u);
  // Cluster services keep working under the new orchestrator: client
  // traffic routes and a topology change still succeeds.
  client::SmartClient client(&cluster_, "default", {}, /*client_id=*/501);
  for (int i = 0; i < 20; ++i) {
    std::string k = "orch" + std::to_string(i);
    ASSERT_TRUE(client.Upsert(k, "v" + std::to_string(i)).ok());
    auto g = client.Get(k);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_EQ(g->value, "v" + std::to_string(i));
  }
  ASSERT_TRUE(cluster_.Rebalance().ok());
}

// --- Delta node recovery (paper §4.3.1) ---

TEST_F(ClusterTest, RecoverNodeRejectsInvalidTargets) {
  EXPECT_TRUE(cluster_.RecoverNode(99).IsNotFound());
  Status st = cluster_.RecoverNode(1);  // healthy member, not failed over
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
}

TEST_F(ClusterTest, DeltaRecoveryReintegratesFailedOverNode) {
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(Write("pre" + std::to_string(i), "v" + std::to_string(i))
                    .ok());
  }
  cluster_.Quiesce();
  uint64_t delta0 = ClusterCounter("recovery.delta_total");
  uint64_t rollbacks0 = ClusterCounter("recovery.rollback_vbuckets");

  ASSERT_TRUE(cluster_.Failover(2).ok());
  // The cluster keeps taking writes while node 2 is out.
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(Write("post" + std::to_string(i), "w" + std::to_string(i))
                    .ok());
  }
  cluster_.Quiesce();

  ASSERT_TRUE(cluster_.RecoverNode(2).ok());
  EXPECT_FALSE(cluster_.failed_over(2));
  EXPECT_EQ(ClusterCounter("recovery.delta_total"), delta0 + 1);
  // The failover was quiesced, so nothing on node 2 diverged: recovery is
  // pure delta catch-up, no vBucket rollback.
  EXPECT_EQ(ClusterCounter("recovery.rollback_vbuckets"), rollbacks0);
  cluster_.Quiesce();

  // Rebalance (run by RecoverNode) handed active vBuckets back to node 2,
  // and every write — before and during the outage — is still readable.
  EXPECT_GT(cluster_.map("default")->CountActive(2), 0u);
  for (int i = 0; i < 150; ++i) {
    auto pre = Read("pre" + std::to_string(i));
    ASSERT_TRUE(pre.ok()) << "pre" << i << ": " << pre.status().ToString();
    EXPECT_EQ(pre->doc.value, "v" + std::to_string(i));
    auto post = Read("post" + std::to_string(i));
    ASSERT_TRUE(post.ok()) << "post" << i << ": "
                           << post.status().ToString();
    EXPECT_EQ(post->doc.value, "w" + std::to_string(i));
  }
}

// --- HealthMonitor detector + orchestration, on a manual clock ---

class HealthMonitorTest : public ::testing::Test {
 protected:
  HealthMonitorTest()
      : clock_(1'000'000'000ULL), transport_(/*seed=*/99), cluster_(Opts()) {}

  ClusterOptions Opts() {
    ClusterOptions o;
    o.clock = &clock_;
    return o;
  }

  void SetUp() override {
    for (int i = 0; i < 5; ++i) cluster_.AddNode();
    BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 2;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
    cluster_.set_transport(&transport_);
  }

  void TearDown() override { cluster_.set_transport(nullptr); }

  ManualClock clock_;
  net::FaultyTransport transport_;
  Cluster cluster_;
};

TEST_F(HealthMonitorTest, DetectorConfirmsDownExactlyAtTimeout) {
  HealthMonitorOptions opts;
  opts.auto_failover_timeout_ms = 500;
  opts.auto_failover_enabled = false;  // detector only
  HealthMonitor monitor(&cluster_, opts);
  monitor.TickOnce();
  EXPECT_EQ(monitor.Opinion(0, 4), PeerHealth::kHealthy);

  transport_.IsolateNode(4);
  monitor.TickOnce();  // failing, but not yet for auto_failover_timeout_ms
  EXPECT_EQ(monitor.Opinion(0, 4), PeerHealth::kSuspect);
  clock_.AdvanceMillis(499);
  monitor.TickOnce();
  EXPECT_EQ(monitor.Opinion(0, 4), PeerHealth::kSuspect);
  clock_.AdvanceMillis(1);
  monitor.TickOnce();
  EXPECT_EQ(monitor.Opinion(0, 4), PeerHealth::kConfirmedDown);

  // One successful round fully clears the verdict — there is no sticky
  // failure state a flapping link could accumulate.
  transport_.HealNode(4);
  monitor.TickOnce();
  EXPECT_EQ(monitor.Opinion(0, 4), PeerHealth::kHealthy);
  EXPECT_FALSE(cluster_.failed_over(4));
}

TEST_F(HealthMonitorTest, QuorumConfirmationTriggersAutoFailover) {
  HealthMonitorOptions opts;
  opts.auto_failover_timeout_ms = 300;
  HealthMonitor monitor(&cluster_, opts);
  monitor.TickOnce();

  transport_.IsolateNode(4);
  monitor.TickOnce();
  ASSERT_FALSE(cluster_.failed_over(4));  // suspect is not enough
  clock_.AdvanceMillis(300);
  monitor.TickOnce();
  EXPECT_TRUE(cluster_.failed_over(4));
  EXPECT_EQ(monitor.failovers_executed(), 1);
  EXPECT_EQ(cluster_.map("default")->CountActive(4), 0u);
}

TEST_F(HealthMonitorTest, FailoverBudgetStopsCascadesUntilReset) {
  HealthMonitorOptions opts;
  opts.auto_failover_timeout_ms = 200;
  opts.max_auto_failovers = 1;
  HealthMonitor monitor(&cluster_, opts);
  monitor.TickOnce();

  transport_.IsolateNode(4);
  clock_.AdvanceMillis(200);
  monitor.TickOnce();
  ASSERT_TRUE(cluster_.failed_over(4));

  // A second node dies, but the budget is spent: the monitor confirms it
  // down yet refuses to act until an operator resets the budget.
  transport_.IsolateNode(3);
  clock_.AdvanceMillis(400);
  monitor.TickOnce();
  monitor.TickOnce();
  EXPECT_EQ(monitor.Opinion(0, 3), PeerHealth::kConfirmedDown);
  EXPECT_FALSE(cluster_.failed_over(3));
  EXPECT_EQ(monitor.failovers_executed(), 1);

  monitor.ResetFailoverBudget();
  monitor.TickOnce();
  EXPECT_TRUE(cluster_.failed_over(3));
  EXPECT_EQ(monitor.failovers_executed(), 2);
}

}  // namespace
}  // namespace couchkv::cluster
