// Tests for the cluster layer: vBucket mapping, bucket/flusher behaviour,
// replication, durability, orchestrator election, rebalance, failover.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/smart_client.h"
#include "cluster/cluster.h"
#include "cluster/vbucket.h"
#include "cluster/vbucket_map.h"
#include "net/faulty_transport.h"

namespace couchkv::cluster {
namespace {

// --- VBucketMap ---

TEST(VBucketMapTest, KeyHashingMatchesCrc32) {
  EXPECT_EQ(KeyToVBucket("user::123"), Crc32("user::123") % kNumVBuckets);
}

TEST(VBucketMapTest, BalancedMapCoversAllVBuckets) {
  ClusterMap map = BuildBalancedMap({0, 1, 2, 3}, 1, 1);
  for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
    const auto& e = map.entries[vb];
    EXPECT_NE(e.active, kNoNode);
    ASSERT_EQ(e.replicas.size(), 1u);
    EXPECT_NE(e.replicas[0], e.active);
  }
}

TEST(VBucketMapTest, BalancedMapIsEven) {
  ClusterMap map = BuildBalancedMap({0, 1, 2, 3}, 1, 1);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(map.CountActive(n), kNumVBuckets / 4);
  }
}

TEST(VBucketMapTest, ReplicaCountClampedToNodes) {
  ClusterMap map = BuildBalancedMap({0, 1}, 3, 1);
  EXPECT_EQ(map.entries[0].replicas.size(), 1u);  // only 1 other node
}

TEST(VBucketMapTest, ThreeReplicasDistinctNodes) {
  ClusterMap map = BuildBalancedMap({0, 1, 2, 3, 4}, 3, 1);
  for (uint16_t vb = 0; vb < kNumVBuckets; vb += 97) {
    const auto& e = map.entries[vb];
    std::set<NodeId> owners(e.replicas.begin(), e.replicas.end());
    owners.insert(e.active);
    EXPECT_EQ(owners.size(), 4u);
  }
}

// --- VBucket ---

// Regression: the rebalance switchover drains the last deltas by pumping the
// DCP producer inside WithOpLock, and the producer's backfill callback reads
// the stream's vBucket file via file(). file() must therefore never acquire
// op_mu_ — an earlier rewrite routed it through the op lock and the
// switchover self-deadlocked whenever a stream still needed backfill. With
// the pointer on its own leaf lock this returns; before, it hung forever.
TEST(VBucketTest, FileIsReadableWhileOpLockHeld) {
  VBucket vb(0, VBucketState::kActive, Clock::Real(),
             kv::EvictionPolicy::kValueOnly);
  storage::CouchFile* seen = reinterpret_cast<storage::CouchFile*>(1);
  vb.WithOpLock([&] { seen = vb.file(); });
  EXPECT_EQ(seen, nullptr);  // no file attached; the point is it returned
}

// --- Cluster fixture ---

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) cluster_.AddNode();
    BucketConfig cfg;
    cfg.name = "default";
    cfg.num_replicas = 1;
    ASSERT_TRUE(cluster_.CreateBucket(cfg).ok());
  }

  // Writes through the data service directly (no smart client).
  StatusOr<kv::DocMeta> Write(const std::string& key,
                              const std::string& value) {
    uint16_t vb = KeyToVBucket(key);
    NodeId active = cluster_.map("default")->ActiveFor(vb);
    return cluster_.node(active)->Set("default", vb, key, value, 0, 0, 0);
  }

  StatusOr<kv::GetResult> Read(const std::string& key) {
    uint16_t vb = KeyToVBucket(key);
    NodeId active = cluster_.map("default")->ActiveFor(vb);
    return cluster_.node(active)->Get("default", vb, key);
  }

  Cluster cluster_;
};

TEST_F(ClusterTest, WriteAndReadThroughActiveNode) {
  ASSERT_TRUE(Write("k1", "{\"a\":1}").ok());
  auto r = Read("k1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.value, "{\"a\":1}");
}

TEST_F(ClusterTest, WrongNodeReturnsNotMyVBucket) {
  uint16_t vb = KeyToVBucket("k1");
  NodeId active = cluster_.map("default")->ActiveFor(vb);
  NodeId wrong = (active + 1) % 4;
  // The wrong node hosts this vb as replica or dead, never active.
  auto r = cluster_.node(wrong)->Set("default", vb, "k1", "v", 0, 0, 0);
  EXPECT_TRUE(r.status().IsNotMyVBucket());
}

TEST_F(ClusterTest, OrchestratorIsLowestHealthyNode) {
  EXPECT_EQ(cluster_.orchestrator(), 0u);
  cluster_.node(0)->set_healthy(false);
  EXPECT_EQ(cluster_.orchestrator(), 1u);
  cluster_.node(0)->set_healthy(true);
  EXPECT_EQ(cluster_.orchestrator(), 0u);
}

TEST_F(ClusterTest, MutationsReplicateAsynchronously) {
  ASSERT_TRUE(Write("k1", "v1").ok());
  cluster_.Quiesce();
  uint16_t vb = KeyToVBucket("k1");
  auto map = cluster_.map("default");
  NodeId replica = map->ReplicasFor(vb)[0];
  std::shared_ptr<Bucket> rb = cluster_.node(replica)->bucket("default");
  auto r = rb->vbucket(vb)->hash_table().Get("k1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.value, "v1");
}

TEST_F(ClusterTest, ReplicaRejectsFrontEndOps) {
  uint16_t vb = KeyToVBucket("k1");
  NodeId replica = cluster_.map("default")->ReplicasFor(vb)[0];
  auto r = cluster_.node(replica)->Get("default", vb, "k1");
  EXPECT_TRUE(r.status().IsNotMyVBucket());
}

TEST_F(ClusterTest, FlusherPersistsAsynchronously) {
  auto meta = Write("k1", "v1");
  ASSERT_TRUE(meta.ok());
  cluster_.Quiesce();
  uint16_t vb = KeyToVBucket("k1");
  NodeId active = cluster_.map("default")->ActiveFor(vb);
  std::shared_ptr<Bucket> b = cluster_.node(active)->bucket("default");
  EXPECT_GE(b->vbucket(vb)->persisted_seqno(), meta->seqno);
  // The document is now on "disk".
  auto doc = b->vbucket(vb)->file()->Get("k1");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->value, "v1");
}

TEST_F(ClusterTest, DurabilityReplicateTo) {
  auto meta = Write("k1", "v1");
  ASSERT_TRUE(meta.ok());
  Status st = cluster_.WaitForDurability("default", KeyToVBucket("k1"),
                                         meta->seqno, Durability::Replicate(1));
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(ClusterTest, DurabilityPersistTo) {
  auto meta = Write("k1", "v1");
  ASSERT_TRUE(meta.ok());
  Status st = cluster_.WaitForDurability("default", KeyToVBucket("k1"),
                                         meta->seqno, Durability::Persist(1));
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST_F(ClusterTest, DurabilityTimesOutWhenImpossible) {
  auto meta = Write("k1", "v1");
  ASSERT_TRUE(meta.ok());
  Durability dur;
  dur.replicate_to = 3;  // only 1 replica configured
  dur.timeout_ms = 50;
  Status st = cluster_.WaitForDurability("default", KeyToVBucket("k1"),
                                         meta->seqno, dur);
  EXPECT_TRUE(st.IsTimeout());
}

TEST_F(ClusterTest, FailoverPromotesReplicas) {
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(Write("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  cluster_.Quiesce();

  NodeId victim = 2;
  ASSERT_TRUE(cluster_.Failover(victim).ok());
  auto map = cluster_.map("default");
  // No vBucket is active on the failed node.
  for (uint16_t vb = 0; vb < kNumVBuckets; ++vb) {
    EXPECT_NE(map->ActiveFor(vb), victim);
    EXPECT_NE(map->ActiveFor(vb), kNoNode);
  }
  // All data remains readable from promoted replicas.
  for (int i = 0; i < 200; ++i) {
    auto r = Read("key" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "key" << i;
    EXPECT_EQ(r->doc.value, "v" + std::to_string(i));
  }
}

TEST_F(ClusterTest, FailedNodeRefusesRequests) {
  ASSERT_TRUE(cluster_.Failover(1).ok());
  auto r = cluster_.node(1)->Get("default", 0, "k");
  EXPECT_TRUE(r.status().IsTempFail());
}

TEST_F(ClusterTest, RebalanceAfterAddNodeMovesVBuckets) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(Write("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  cluster_.Quiesce();

  NodeId n4 = cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  EXPECT_GT(cluster_.total_vbucket_moves(), 0u);

  auto map = cluster_.map("default");
  // The new node now owns ~1/5 of the active partitions.
  size_t on_new = map->CountActive(n4);
  EXPECT_NEAR(static_cast<double>(on_new), kNumVBuckets / 5.0,
              kNumVBuckets / 20.0);
  // All data survives and routes correctly.
  for (int i = 0; i < 300; ++i) {
    auto r = Read("key" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "key" << i << ": " << r.status().ToString();
    EXPECT_EQ(r->doc.value, "v" + std::to_string(i));
  }
}

TEST_F(ClusterTest, RebalanceKeepsReplicationWorking) {
  cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  ASSERT_TRUE(Write("post-rebalance", "v").ok());
  cluster_.Quiesce();
  uint16_t vb = KeyToVBucket("post-rebalance");
  auto map = cluster_.map("default");
  ASSERT_FALSE(map->ReplicasFor(vb).empty());
  NodeId replica = map->ReplicasFor(vb)[0];
  auto r = cluster_.node(replica)
               ->bucket("default")
               ->vbucket(vb)
               ->hash_table()
               .Get("post-rebalance");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.value, "v");
}

TEST_F(ClusterTest, MapVersionIncreasesOnTopologyChange) {
  uint64_t v0 = cluster_.map("default")->version;
  cluster_.AddNode();
  ASSERT_TRUE(cluster_.Rebalance().ok());
  EXPECT_GT(cluster_.map("default")->version, v0);
}

TEST_F(ClusterTest, MdsNodeWithoutDataServiceHostsNoBuckets) {
  Cluster c;
  c.AddNode(kDataService);
  NodeId query_only = c.AddNode(kQueryService);
  BucketConfig cfg;
  cfg.name = "b";
  cfg.num_replicas = 0;
  ASSERT_TRUE(c.CreateBucket(cfg).ok());
  EXPECT_EQ(c.node(query_only)->bucket("b"), nullptr);
  auto r = c.node(query_only)->Get("b", 0, "k");
  EXPECT_FALSE(r.ok());
}

TEST_F(ClusterTest, CompactionReducesFragmentation) {
  // Hammer one key so its vBucket file is nearly all stale versions. Each
  // write waits for persistence so the disk-queue dedup cannot collapse the
  // versions into a single disk write.
  std::string key = "hot";
  uint16_t vb = KeyToVBucket(key);
  NodeId active = cluster_.map("default")->ActiveFor(vb);
  std::shared_ptr<Bucket> b = cluster_.node(active)->bucket("default");
  for (int i = 0; i < 50; ++i) {
    auto meta = Write(key, std::string(256, 'x') + std::to_string(i));
    ASSERT_TRUE(meta.ok());
    ASSERT_TRUE(b->WaitForPersistence(vb, meta->seqno, 5000).ok());
  }
  cluster_.Quiesce();
  EXPECT_GT(b->vbucket(vb)->file()->Fragmentation(), 0.5);
  size_t compacted = b->MaybeCompact();
  EXPECT_GE(compacted, 1u);
  EXPECT_LT(b->vbucket(vb)->file()->Fragmentation(), 0.5);
  auto r = Read(key);
  ASSERT_TRUE(r.ok());
}

TEST_F(ClusterTest, QuotaEnforcementEvicts) {
  Cluster c;
  c.AddNode();
  BucketConfig cfg;
  cfg.name = "small";
  cfg.num_replicas = 0;
  cfg.memory_quota_bytes = 1 << 20;  // 1 MiB
  ASSERT_TRUE(c.CreateBucket(cfg).ok());
  std::shared_ptr<Bucket> b = c.node(0)->bucket("small");
  for (int i = 0; i < 2000; ++i) {
    std::string key = "k" + std::to_string(i);
    uint16_t vb = KeyToVBucket(key);
    ASSERT_TRUE(
        c.node(0)->Set("small", vb, key, std::string(2048, 'v'), 0, 0, 0).ok());
  }
  c.Quiesce();  // persist so values are clean and evictable
  ASSERT_GT(b->mem_used(), cfg.memory_quota_bytes);
  uint64_t reclaimed = b->EnforceQuota();
  EXPECT_GT(reclaimed, 0u);
}

TEST_F(ClusterTest, CrashNodeRefusesRequestsUntilRestart) {
  ASSERT_TRUE(Write("k1", "v1").ok());
  cluster_.Quiesce();  // persist + replicate before the crash
  uint16_t vb = KeyToVBucket("k1");
  NodeId active = cluster_.map("default")->ActiveFor(vb);

  ASSERT_TRUE(cluster_.CrashNode(active).ok());
  auto r = cluster_.node(active)->Get("default", vb, "k1");
  EXPECT_TRUE(r.status().IsTempFail()) << r.status().ToString();
  // Unlike Failover, the map still names the crashed node as active.
  EXPECT_EQ(cluster_.map("default")->ActiveFor(vb), active);

  ASSERT_TRUE(cluster_.RestartNode(active).ok());
  auto after = Read("k1");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->doc.value, "v1");
}

TEST_F(ClusterTest, RestartedNodeRecoversOnlyCommittedWrites) {
  // Persisted write -> survives. Memory-only write -> lost by the crash,
  // and the replica that received it over DCP is rolled back to match.
  ASSERT_TRUE(Write("durable", "kept").ok());
  cluster_.Quiesce();
  uint16_t vb = KeyToVBucket("durable");
  NodeId active = cluster_.map("default")->ActiveFor(vb);
  ASSERT_TRUE(cluster_.CrashNode(active).ok());
  ASSERT_TRUE(cluster_.RestartNode(active).ok());
  cluster_.Quiesce();

  auto r = Read("durable");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->doc.value, "kept");
  // Replica converged on the recovered active.
  NodeId replica = cluster_.map("default")->ReplicasFor(vb)[0];
  auto rr = cluster_.node(replica)->bucket("default")->vbucket(vb)
                ->hash_table().Get("durable");
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr->doc.value, "kept");
}

TEST_F(ClusterTest, RebalanceUnderFaultyTransport) {
  // Clients keep writing and reading while a node joins and the cluster
  // rebalances over a lossy, laggy network. NOT_MY_VBUCKET answers and
  // dropped messages are retried by the smart client; when the dust
  // settles, every acknowledged key must be reachable.
  net::FaultyTransport transport(12345);
  net::LinkFaults lossy;
  lossy.drop = 0.05;
  lossy.max_latency_us = 30;
  transport.SetDefaultFaults(lossy);
  cluster_.set_transport(&transport);

  std::atomic<bool> stop{false};
  std::atomic<int> write_failures{0};
  std::vector<std::vector<std::string>> acked(3);
  std::vector<std::thread> workers;
  for (int c = 0; c < 3; ++c) {
    workers.emplace_back([&, c] {
      client::SmartClient client(&cluster_, "default", {},
                                 /*client_id=*/100 + c);
      // At least one full pass over this client's 40 keys, then keep the
      // load up until the rebalance finishes.
      for (int i = 0; i < 40 || !stop.load(); ++i) {
        std::string key = "rb-c" + std::to_string(c) + "-" +
                          std::to_string(i % 40);
        if (client.Upsert(key, "v" + std::to_string(i)).ok()) {
          if (i < 40) acked[c].push_back(key);
        } else {
          write_failures.fetch_add(1);
        }
        (void)client.Get(key);
      }
    });
  }

  NodeId added = cluster_.AddNode();
  Status st = cluster_.Rebalance();
  stop.store(true);
  for (auto& w : workers) w.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(cluster_.map("default")->CountActive(added), 0u);
  EXPECT_GT(transport.stats().dropped, 0u);

  // Settle on a clean network, then verify reachability of every key that
  // was acked during the storm: zero unreachable keys.
  transport.Reset();
  cluster_.Quiesce();
  client::SmartClient checker(&cluster_, "default", {}, /*client_id=*/99);
  int unreachable = 0;
  for (const auto& keys : acked) {
    for (const std::string& key : keys) {
      if (!checker.Get(key).ok()) ++unreachable;
    }
  }
  EXPECT_EQ(unreachable, 0);
  cluster_.set_transport(nullptr);
}

}  // namespace
}  // namespace couchkv::cluster
