// Determinism torture: the same seed must produce the identical fault
// schedule AND the identical final KV state across two independent runs —
// the property that makes torture-test failures reproducible. Holds because
// every directed link owns an RNG stream seeded from (seed, src, dst), and
// faults are configured only on links whose message order the workload
// controls (client links; each worker client owns its endpoint id and its
// keys).
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "harness/torture.h"
#include "net/faulty_transport.h"

namespace couchkv {
namespace {

struct RunResult {
  uint64_t state_fp = 0;
  uint64_t schedule_fp = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
};

RunResult RunOnce(uint64_t seed) {
  cluster::Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.AddNode();
  cluster::BucketConfig cfg;
  cfg.name = "default";
  cfg.num_replicas = 1;
  EXPECT_TRUE(cluster.CreateBucket(cfg).ok());

  net::FaultyTransport transport(seed);
  net::LinkFaults lossy;
  lossy.drop = 0.05;
  lossy.max_latency_us = 20;
  // Client links only: their per-link message order is driver-ordered (one
  // worker per endpoint), so fault decisions replay identically. Node-node
  // replication links stay perfect — their cross-thread interleaving is
  // not controlled, but perfect links make identical decisions regardless.
  transport.SetClientFaults(lossy);
  cluster.set_transport(&transport);

  harness::TortureOptions opts;
  opts.seed = seed;
  opts.num_clients = 3;
  opts.ops_per_client = 100;
  opts.keys_per_client = 16;
  opts.persist_every = 4;
  harness::TortureDriver driver(&cluster, "default", opts);
  driver.Run();
  driver.Settle();

  RunResult r;
  r.state_fp = driver.StateFingerprint();
  r.schedule_fp = transport.ScheduleFingerprint();
  r.delivered = transport.stats().delivered;
  r.dropped = transport.stats().dropped;
  cluster.set_transport(nullptr);
  return r;
}

class TortureDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TortureDeterminismTest, SameSeedSameScheduleAndSameFinalState) {
  RunResult a = RunOnce(GetParam());
  RunResult b = RunOnce(GetParam());
  EXPECT_EQ(a.schedule_fp, b.schedule_fp)
      << "fault schedules diverged: " << a.delivered << "/" << a.dropped
      << " vs " << b.delivered << "/" << b.dropped << " delivered/dropped";
  EXPECT_EQ(a.state_fp, b.state_fp) << "final KV state diverged";
  EXPECT_EQ(a.dropped, b.dropped);
}

TEST_P(TortureDeterminismTest, DifferentSeedDifferentSchedule) {
  RunResult a = RunOnce(GetParam());
  RunResult b = RunOnce(GetParam() + 1);
  // With thousands of per-message coin flips, distinct seeds colliding on
  // the full schedule fingerprint would be astronomically unlucky.
  EXPECT_NE(a.schedule_fp, b.schedule_fp);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureDeterminismTest,
                         ::testing::Values(11, 4242, 0xabcdef),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.index);
                         });

}  // namespace
}  // namespace couchkv
